package simcache

// The runtime twin of the cachekey analyzer (internal/analysis/cachekey):
// where the analyzer proves statically that every exported field of the
// fingerprinted structs is either read by a Canonical function or marked
// //iovet:cosmetic, the tests here prove it dynamically — mutate one field
// at a time with testing/quick-generated values and watch the fingerprint.
// Physical fields must re-key the cache; cosmetic fields must not.
//
// The walker deliberately does NOT read the package skip maps to decide
// what counts as cosmetic: it carries its own declaration (cosmeticFields
// below) and a separate test pins the skip maps to it. A physical field
// smuggled into specSkip would otherwise make the walker agree with the
// bug it exists to catch (the acceptance canary in canaries/ is exactly
// that edit).

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"iophases/internal/cluster"
	"iophases/internal/coexec"
	"iophases/internal/core"
	"iophases/internal/faults"
	"iophases/internal/ior"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// cosmeticFields is this test's own declaration of which fields are
// label-only, keyed by the struct type that owns them. Each of these types
// is encoded at exactly one "binding point" (Canonical's two arguments,
// CanonicalCoexec's Config and *App.Model, the hand-written App loop), so
// owning-type lookup reproduces the skip semantics of encodeValue exactly.
var cosmeticFields = map[reflect.Type]map[string]bool{
	reflect.TypeOf(cluster.Spec{}): {"Name": true, "Description": true},
	reflect.TypeOf(ior.Params{}):   {"FileName": true},
	reflect.TypeOf(core.Model{}):   {"App": true, "SourceConfig": true, "Files": true},
	reflect.TypeOf(coexec.App{}):   {"Name": true},
}

// TestSkipMapsMatchDeclaredCosmetic pins the package skip maps to the
// declaration above. Adding a field to a skip map without updating the
// declaration — the stale-cache bug class — fails here before the walker
// even runs. TraceRun is the one entry with no walker counterpart: traced
// runs bypass the cache before any fingerprint is computed (and the
// admission tag legitimately reads the flag), so its cosmetic claim is
// asserted by TestTraceRunBypassesFingerprinting instead.
func TestSkipMapsMatchDeclaredCosmetic(t *testing.T) {
	wantIOR := map[string]bool{"FileName": true, "TraceRun": true}
	if !reflect.DeepEqual(specSkip, cosmeticFields[reflect.TypeOf(cluster.Spec{})]) {
		t.Errorf("specSkip = %v, want the declared cosmetic set; physical fields must never enter a skip map", specSkip)
	}
	if !reflect.DeepEqual(iorSkip, wantIOR) {
		t.Errorf("iorSkip = %v, want %v", iorSkip, wantIOR)
	}
	if !reflect.DeepEqual(coexecModelSkip, cosmeticFields[reflect.TypeOf(core.Model{})]) {
		t.Errorf("coexecModelSkip = %v, want the declared cosmetic set", coexecModelSkip)
	}
	// Every skip entry must name a real field, so a renamed field cannot
	// silently turn its skip entry into a no-op (the cachekey analyzer's
	// "names no field" diagnostic, enforced at runtime).
	for typ, skip := range map[reflect.Type]map[string]bool{
		reflect.TypeOf(cluster.Spec{}): specSkip,
		reflect.TypeOf(ior.Params{}):   iorSkip,
		reflect.TypeOf(core.Model{}):   coexecModelSkip,
	} {
		for name := range skip {
			if _, ok := typ.FieldByName(name); !ok {
				t.Errorf("skip map for %s names %q, which is not a field", typ, name)
			}
		}
	}
}

// mutation is one planned single-field edit: navigate steps from the root,
// apply the kind-specific change, and expect the fingerprint to move (or
// hold still, for cosmetic fields).
type mutation struct {
	path         string
	steps        []step
	kind         int // mutLeaf | mutAllocate | mutAppend
	expectChange bool
}

const (
	mutLeaf     = iota // replace a scalar with a quick-generated value
	mutAllocate        // nil pointer -> pointer to zero value
	mutAppend          // slice gains one zero element
)

type step struct {
	kind byte // 'f' struct field, 'i' slice index, 'p' pointer deref
	idx  int
}

func navigate(v reflect.Value, steps []step) reflect.Value {
	for _, s := range steps {
		switch s.kind {
		case 'f':
			v = v.Field(s.idx)
		case 'i':
			v = v.Index(s.idx)
		default:
			v = v.Elem()
		}
	}
	return v
}

// planMutations walks v and emits one mutation per reachable field:
// scalars get a value swap, nil pointers get allocated, empty slices get
// an element, populated slices recurse into element 0. A cosmetic field
// is mutated as a whole (no recursion — everything under it is equally
// label-only) with expectChange=false.
func planMutations(v reflect.Value, path string, steps []step, out *[]mutation) {
	wholeField := func(fv reflect.Value, fpath string, fsteps []step, expect bool) {
		m := mutation{path: fpath, steps: fsteps, expectChange: expect}
		switch fv.Kind() {
		case reflect.Slice:
			m.kind = mutAppend
			m.path += "[+]"
		case reflect.Pointer:
			if !fv.IsNil() {
				// Cosmetic pointers do not occur in the fingerprinted
				// structs; only nil allocation is needed here.
				return
			}
			m.kind = mutAllocate
		default:
			m.kind = mutLeaf
		}
		*out = append(*out, m)
	}
	switch v.Kind() {
	case reflect.Struct:
		skip := cosmeticFields[v.Type()]
		for i := 0; i < v.NumField(); i++ {
			f := v.Type().Field(i)
			if !f.IsExported() {
				continue
			}
			fsteps := append(append([]step{}, steps...), step{'f', i})
			fpath := path + "." + f.Name
			if skip[f.Name] {
				wholeField(v.Field(i), fpath, fsteps, false)
				continue
			}
			planMutations(v.Field(i), fpath, fsteps, out)
		}
	case reflect.Pointer:
		if v.IsNil() {
			*out = append(*out, mutation{path: path, steps: steps, kind: mutAllocate, expectChange: true})
			return
		}
		planMutations(v.Elem(), path, append(append([]step{}, steps...), step{'p', 0}), out)
	case reflect.Slice:
		if v.Len() == 0 {
			*out = append(*out, mutation{path: path + "[+]", steps: steps, kind: mutAppend, expectChange: true})
			return
		}
		planMutations(v.Index(0), path+"[0]", append(append([]step{}, steps...), step{'i', 0}), out)
	default:
		*out = append(*out, mutation{path: path, steps: steps, kind: mutLeaf, expectChange: true})
	}
}

// apply performs the mutation on an addressable deep copy of the root.
func (m mutation) apply(t *testing.T, rng *rand.Rand, root reflect.Value) {
	t.Helper()
	v := navigate(root, m.steps)
	switch m.kind {
	case mutAllocate:
		v.Set(reflect.New(v.Type().Elem()))
	case mutAppend:
		v.Set(reflect.Append(v, reflect.Zero(v.Type().Elem())))
	default:
		old := v.Interface()
		for tries := 0; ; tries++ {
			if tries > 1000 {
				t.Fatalf("%s: no distinct quick value for %s after %d tries", m.path, v.Type(), tries)
			}
			nv, ok := quick.Value(v.Type(), rng)
			if !ok {
				t.Fatalf("%s: testing/quick cannot generate %s", m.path, v.Type())
			}
			if !reflect.DeepEqual(nv.Interface(), old) {
				v.Set(nv)
				return
			}
		}
	}
}

// deepCopy clones v so a mutation never leaks into the shared base value.
func deepCopy(v reflect.Value) reflect.Value {
	out := reflect.New(v.Type()).Elem()
	copyInto(out, v)
	return out
}

func copyInto(dst, src reflect.Value) {
	switch src.Kind() {
	case reflect.Pointer:
		if src.IsNil() {
			return
		}
		p := reflect.New(src.Type().Elem())
		copyInto(p.Elem(), src.Elem())
		dst.Set(p)
	case reflect.Slice:
		if src.IsNil() {
			return
		}
		s := reflect.MakeSlice(src.Type(), src.Len(), src.Len())
		dst.Set(s)
		for i := 0; i < src.Len(); i++ {
			copyInto(dst.Index(i), src.Index(i))
		}
	case reflect.Struct:
		dst.Set(src) // shallow first, then deep-fix the reference fields
		for i := 0; i < src.NumField(); i++ {
			if !src.Type().Field(i).IsExported() {
				continue
			}
			switch src.Field(i).Kind() {
			case reflect.Pointer, reflect.Slice, reflect.Struct:
				copyInto(dst.Field(i), src.Field(i))
			}
		}
	default:
		dst.Set(src)
	}
}

// checkMutations runs every planned mutation against fingerprint and
// asserts the expected sensitivity.
func checkMutations(t *testing.T, rng *rand.Rand, base reflect.Value, muts []mutation, fingerprint func(reflect.Value) string) {
	t.Helper()
	fp0 := fingerprint(base)
	for _, m := range muts {
		cp := deepCopy(base)
		m.apply(t, rng, cp)
		got := fingerprint(cp)
		if m.expectChange && got == fp0 {
			t.Errorf("%s: mutating this physical field did not change the fingerprint — a stale cache entry would be served for the new configuration", m.path)
		}
		if !m.expectChange && got != fp0 {
			t.Errorf("%s: mutating this cosmetic field changed the fingerprint — renamed-but-identical replays no longer share a cache entry", m.path)
		}
	}
}

// richSpec is ConfigA with the optional subtrees populated, so the walker
// reaches the fields inside LocalDisk and Faults rather than only the
// nil->non-nil transition (covered by TestFingerprintCoversClusterSpec on
// the plain ConfigA).
func richSpec() cluster.Spec {
	s := cluster.ConfigA()
	d := s.Storage.Disk
	s.LocalDisk = &d
	s.Faults = &faults.Schedule{
		Name: "degraded", Seed: 7,
		Effects: []faults.Effect{{Kind: faults.Kind("slow-disk"), Match: "ion", FromSec: 1, ForSec: 2, Factor: 3}},
	}
	return s
}

// TestFingerprintCoversClusterSpec mutates every reachable field of
// cluster.Spec and ior.Params — ConfigA as-is (nil LocalDisk/Faults, so
// their allocation is a mutation) and the enriched variant (so their
// interiors are walked too) — asserting Fingerprint moves exactly when a
// physical field does.
func TestFingerprintCoversClusterSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	p := testParams()
	for _, spec := range []cluster.Spec{cluster.ConfigA(), richSpec()} {
		var specMuts []mutation
		planMutations(reflect.ValueOf(spec), "Spec", nil, &specMuts)
		if len(specMuts) < 15 {
			t.Fatalf("walker planned only %d spec mutations; the walk is not reaching the tree", len(specMuts))
		}
		checkMutations(t, rng, reflect.ValueOf(spec), specMuts, func(v reflect.Value) string {
			return Fingerprint(v.Interface().(cluster.Spec), p)
		})
	}

	var pMuts []mutation
	// TraceRun is excluded from the walk (see TestTraceRunBypassesFingerprinting).
	base := reflect.ValueOf(testParams())
	planMutations(base, "Params", nil, &pMuts)
	spec := cluster.ConfigA()
	kept := pMuts[:0]
	for _, m := range pMuts {
		if m.path != "Params.TraceRun" {
			kept = append(kept, m)
		}
	}
	checkMutations(t, rng, base, kept, func(v reflect.Value) string {
		return Fingerprint(spec, v.Interface().(ior.Params))
	})
}

// TestTraceRunBypassesFingerprinting pins why TraceRun may sit in iorSkip
// without a walker case: a traced run never reaches the cache lookup, so
// its fingerprint is never computed for keying. The encoded portion of the
// canonical form must still ignore the flag (the skip map's actual claim);
// only the trailing admission tag may read it.
func TestTraceRunBypassesFingerprinting(t *testing.T) {
	spec := cluster.ConfigA()
	p := testParams()
	traced := p
	traced.TraceRun = true
	a, b := Canonical(spec, p), Canonical(spec, traced)
	cut := func(s string) string {
		i := len(s) - len("|fp=")
		for i >= 0 && s[i:i+4] != "|fp=" {
			i--
		}
		if i < 0 {
			t.Fatalf("canonical form lost its |fp= admission tag: %q", s)
		}
		return s[:i]
	}
	if cut(a) != cut(b) {
		t.Errorf("encoded portion of Canonical depends on TraceRun:\n  %s\n  %s", a, b)
	}
}

func coexecBase() coexec.Spec {
	return coexec.Spec{
		Config: cluster.ConfigA(),
		Apps: []coexec.App{{
			Name:      "bt",
			OffsetSec: 1.5,
			Model: &core.Model{
				App: "bt", SourceConfig: "configA", NP: 1,
				Files: []trace.FileMeta{{ID: 0, Name: "btio.out", AccessType: "shared"}},
				Phases: []*core.PhaseModel{{
					ID: 1, File: 0,
					Ops:    []core.OpModel{{Op: trace.Op("write_at"), Size: units.MiB, Disp: units.MiB}},
					Rep:    3, NP: 1, Weight: units.MiB, Tick: 1,
					OffsetC: 4096, OffsetOK: true, OffsetExpr: "c",
					MeasuredSec: 0.25, StartSec: 1.0,
				}},
				AccessMode: "sequential", AccessType: "shared", PointerSet: "explicit",
			},
		}},
	}
}

// TestFingerprintCoexecCoversEveryPhysicalField is the co-execution twin:
// the shared cluster (specSkip applies at its binding point), each app's
// offset, and every physical Model field — including the measured timing
// that schedules phase starts — must re-key; App.Name and the Model's
// provenance labels must not.
func TestFingerprintCoexecCoversEveryPhysicalField(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	base := coexecBase()
	var muts []mutation
	planMutations(reflect.ValueOf(base), "Coexec", nil, &muts)
	if len(muts) < 30 {
		t.Fatalf("walker planned only %d coexec mutations; the walk is not reaching the model tree", len(muts))
	}
	var phaseSeen, cosmeticSeen bool
	for _, m := range muts {
		phaseSeen = phaseSeen || m.path == "Coexec.Apps[0].Model.Phases[0].MeasuredSec"
		cosmeticSeen = cosmeticSeen || (m.path == "Coexec.Apps[0].Name" && !m.expectChange)
	}
	if !phaseSeen || !cosmeticSeen {
		t.Fatalf("plan is missing expected cases (phase timing %v, cosmetic app name %v):\n%+v", phaseSeen, cosmeticSeen, muts)
	}
	checkMutations(t, rng, reflect.ValueOf(base), muts, func(v reflect.Value) string {
		return FingerprintCoexec(v.Interface().(coexec.Spec))
	})
}
