// Command iopredict estimates an application's I/O time on target
// configurations by replaying the phases of its I/O model with the IOR
// replica (§III-B, Eq. 1–2), and selects the configuration with the least
// I/O time. The application never runs on the targets.
//
// Usage:
//
//	iopredict -model model.json                       # all four configurations
//	iopredict -model model.json -configs configC,finisterrae
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iophases"
	"iophases/internal/report"
	"iophases/internal/units"
)

func main() {
	modelPath := flag.String("model", "model.json", "model JSON produced by iomodel -save")
	configsFlag := flag.String("configs", "", "comma-separated configuration names (default: all)")
	perPhase := flag.Bool("phases", false, "print per-phase estimates, not just groups")
	flag.Parse()

	m, err := iophases.LoadModel(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iopredict: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("model: %s, %d processes, %d phases (traced on %s)\n\n",
		m.App, m.NP, len(m.Phases), m.SourceConfig)

	var cfgs []iophases.Config
	if *configsFlag == "" {
		cfgs = iophases.Configs()
	} else {
		for _, name := range strings.Split(*configsFlag, ",") {
			cfg, ok := iophases.ConfigByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "iopredict: unknown configuration %q\n", name)
				os.Exit(1)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	// Drop configurations that cannot host the job.
	kept := cfgs[:0]
	for _, cfg := range cfgs {
		if m.NP <= cfg.MaxProcs() {
			kept = append(kept, cfg)
		} else {
			fmt.Printf("(skipping %s: capacity %d < %d processes)\n", cfg.Name, cfg.MaxProcs(), m.NP)
		}
	}
	cfgs = kept
	if len(cfgs) == 0 {
		fmt.Fprintln(os.Stderr, "iopredict: no configuration can host the job")
		os.Exit(1)
	}

	best, choices, err := iophases.SelectConfig(m, cfgs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iopredict: %v\n", err)
		os.Exit(1)
	}
	var rows [][]string
	for i, ch := range choices {
		mark := ""
		if i == best {
			mark = "  <== least I/O time"
		}
		rows = append(rows, []string{ch.Config, fmt.Sprintf("%.2f s", ch.Total.Seconds()), mark})
	}
	fmt.Print(report.Table("Estimated Time_io (Eq. 1) per configuration",
		[]string{"Configuration", "Time_io(CH)", ""}, rows))

	if *perPhase {
		for _, ch := range choices {
			fmt.Printf("\nPer-phase estimates on %s:\n", ch.Config)
			var prows [][]string
			for _, pe := range ch.Est.Phases {
				prows = append(prows, []string{
					fmt.Sprint(pe.Phase.ID),
					string(pe.Phase.Direction()),
					units.FormatBytes(pe.Phase.Weight),
					fmt.Sprintf("%.1f", pe.BWch.MBpsValue()),
					fmt.Sprintf("%.3f s", pe.TimeCH.Seconds()),
				})
			}
			fmt.Print(report.Table("", []string{"Phase", "Dir", "weight", "BW_CH (MB/s)", "Time_CH"}, prows))
		}
	}
}
