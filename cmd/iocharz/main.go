// Command iocharz runs the exhaustive I/O-system characterization of the
// authors' prior methodology (the paper's reference [11]): the IOR and
// IOzone parameter grids of Tables III–IV over one configuration,
// producing its performance map. The phase methodology exists so this
// sweep need not be repeated per application; iocharz provides the
// baseline view.
//
// Usage:
//
//	iocharz -config configA
//	iocharz -config configB -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
)

func main() {
	config := flag.String("config", "configA", "configuration to characterize")
	quick := flag.Bool("quick", false, "smaller grid for a fast look")
	flag.Parse()

	cfg, ok := iophases.ConfigByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "iocharz: unknown configuration %q\n", *config)
		os.Exit(1)
	}
	opts := iophases.CharzOptions{}
	if *quick {
		opts = iophases.CharzOptions{
			NPs:          []int{1, 4},
			RequestSizes: []int64{1 << 20, 8 << 20},
			BlockSize:    32 << 20,
			DeviceFile:   512 << 20,
		}
	}
	fmt.Printf("characterizing %s (%s)...\n\n", cfg.Name, cfg.Description)
	fmt.Print(iophases.Characterize(cfg, opts))
}
