// Command iod is the resident prediction service: it loads an I/O-model
// corpus once (saved model JSONs and/or a built-in MADBench2
// characterization), warms the replay cache, and answers analysis queries
// over HTTP — the paper's §III-B workflow as a daemon instead of a batch
// run.
//
//	POST /v1/predict           estimate Time_io per configuration, pick the best
//	POST /v1/explore           what-if sweep around a base configuration
//	POST /v1/compare-degraded  healthy-vs-degraded delta under a fault preset
//	GET  /v1/models|configs|scenarios   the queryable universe
//	GET  /metrics              Prometheus text exposition of the obs registry
//	GET  /healthz, /readyz     liveness; readiness flips after cache warmup
//	GET  /debug/pprof/         runtime profiles (only with -pprof)
//
// Usage:
//
//	iod                                  # builtin MADBench2 corpus on localhost:8080
//	iod -addr :9090 -models m1.json,m2.json -access-log access.jsonl
//	iod -timeline run.trace              # per-request spans, dumped at shutdown
//
// Identical queries return byte-identical bodies at any concurrency;
// concurrent identical queries coalesce into one computation. SIGINT/
// SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"iophases"
	"iophases/internal/core"
	"iophases/internal/obs"
	"iophases/internal/report"
	"iophases/internal/serve"
	"iophases/internal/sweep"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	models := flag.String("models", "", "comma-separated model JSON paths (iomodel -save output); corpus names are the file basenames")
	builtin := flag.Bool("builtin", true, "characterize the built-in MADBench2 run in-process and serve it as \"madbench2\"")
	builtinNP := flag.Int("builtin-np", 16, "process count for the builtin characterization")
	warm := flag.Bool("warm", true, "prefill the replay cache for every (model, configuration) pair before readiness")
	inflight := flag.Int("inflight", 0, "max concurrent query computations (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued query computations before 503 (0 = 1024)")
	jobs := flag.Int("j", 0, "sweep worker pool size per computation (0 = GOMAXPROCS)")
	fastpathFlag := flag.String("fastpath", "on", "analytic fast path for contention-free simulations: off, on, or verify")
	shards := flag.Int("shards", 1, "event-queue shards per simulation engine")
	accessLog := flag.String("access-log", "-", "JSON access-log destination: '-' = stdout, '' = disabled, else a file path (appended)")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/ runtime profiling endpoints")
	timeline := flag.String("timeline", "", "record per-request wall-clock spans and write a Chrome trace_event timeline here at shutdown")
	flag.Parse()

	if err := run(*addr, *models, *builtin, *builtinNP, *warm, *inflight, *queue,
		*jobs, *fastpathFlag, *shards, *accessLog, *pprofFlag, *timeline); err != nil {
		fmt.Fprintf(os.Stderr, "iod: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, models string, builtin bool, builtinNP int, warm bool,
	inflight, queue, jobs int, fastpathFlag string, shards int,
	accessLog string, pprofFlag bool, timeline string) error {
	fpMode, err := iophases.ParseFastPath(fastpathFlag)
	if err != nil {
		return err
	}
	iophases.SetFastPath(fpMode)
	if shards < 1 {
		return fmt.Errorf("-shards %d: shard count must be >= 1", shards)
	}
	iophases.SetShards(shards)
	sweep.SetConcurrency(jobs)
	// The /metrics endpoint reads the always-on default registry; the hot
	// simulation registry and the timeline recorder stay off unless span
	// tracing was requested, so the steady-state request path pays nothing
	// for them.
	if timeline != "" {
		obs.SetEnabled(true)
		obs.StartTimeline(0)
	}

	corpus, err := buildCorpus(models, builtin, builtinNP)
	if err != nil {
		return err
	}

	logW, logClose, err := openAccessLog(accessLog)
	if err != nil {
		return err
	}
	if logClose != nil {
		defer logClose()
	}

	srv, err := serve.New(serve.Options{
		Corpus:      corpus,
		Inflight:    inflight,
		Queue:       queue,
		FastPath:    fastpathFlag,
		AccessLog:   logW,
		EnablePprof: pprofFlag,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "iod: serving %d model(s) [%s] on http://%s (fastpath=%s, pprof=%v)\n",
		len(corpus), strings.Join(srv.ModelNames(), ", "), addr, fastpathFlag, pprofFlag)

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}

	// Warm in the background so the listener (and /healthz) come up
	// immediately; /readyz flips once the cache holds every (model,
	// configuration) replay.
	go func() {
		if !warm {
			srv.SetReady(true)
			fmt.Fprintln(os.Stderr, "iod: ready (warmup skipped)")
			return
		}
		t0 := time.Now()
		if err := srv.Warm(); err != nil {
			fmt.Fprintf(os.Stderr, "iod: warmup: %v\n", err)
		}
		fmt.Fprintf(os.Stderr, "iod: ready (warmed in %.1fs)\n", time.Since(t0).Seconds())
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err // listener failed before any signal
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "iod: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if timeline != "" {
		if err := report.SaveTelemetry("", timeline); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "iod: wrote timeline to %s\n", timeline)
	}
	fmt.Fprintln(os.Stderr, "iod: bye")
	return nil
}

// buildCorpus assembles the immutable model corpus: saved models keyed by
// file basename, plus the optional builtin characterization.
func buildCorpus(models string, builtin bool, builtinNP int) (map[string]*core.Model, error) {
	corpus := make(map[string]*core.Model)
	if models != "" {
		for _, path := range strings.Split(models, ",") {
			path = strings.TrimSpace(path)
			m, err := iophases.LoadModel(path)
			if err != nil {
				return nil, err
			}
			name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			if _, dup := corpus[name]; dup {
				return nil, fmt.Errorf("duplicate model name %q (from %s)", name, path)
			}
			corpus[name] = m
		}
	}
	if builtin {
		if _, dup := corpus["madbench2"]; dup {
			return nil, errors.New(`-builtin conflicts with a loaded model named "madbench2"`)
		}
		res := iophases.TraceMADBench2(iophases.ConfigA(), builtinNP,
			iophases.DefaultMADBench(), iophases.RunOptions{})
		corpus["madbench2"] = iophases.Extract(res.Set)
	}
	if len(corpus) == 0 {
		return nil, errors.New("empty corpus: pass -models or enable -builtin")
	}
	return corpus, nil
}

// openAccessLog resolves the -access-log flag. Files are opened in append
// mode so restarts extend, not truncate, the log.
func openAccessLog(dest string) (io.Writer, func() error, error) {
	switch dest {
	case "":
		return nil, nil, nil
	case "-":
		return os.Stdout, nil, nil
	default:
		f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("access log: %w", err)
		}
		return f, f.Close, nil
	}
}
