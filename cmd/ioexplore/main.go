// Command ioexplore answers the questions the paper opens with — "When is
// it convenient to use a parallel or distributed file system? … I/O
// nodes? … RAID or single disks?" — for a concrete application model: it
// sweeps hypothetical configurations derived from a base one and ranks
// them by the model's estimated I/O time. No application run is needed on
// any of them.
//
// Variants are estimated concurrently on a worker pool (-j, default
// GOMAXPROCS); the ranking is deterministic at any width.
//
// Usage:
//
//	ioexplore -model model.json -base configA [-j 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
	"iophases/internal/obs"
	"iophases/internal/prof"
	"iophases/internal/report"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

func main() {
	modelPath := flag.String("model", "model.json", "model JSON produced by iomodel -save")
	base := flag.String("base", "configA", "base configuration to derive variants from")
	jobs := flag.Int("j", 0, "concurrent variant estimations (0 = GOMAXPROCS)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	metrics := flag.String("metrics", "", "write run metrics to this file at exit (.json = JSON, else text)")
	timeline := flag.String("timeline", "", "write a Chrome trace_event timeline (Perfetto-loadable JSON) to this file at exit")
	faultsFlag := flag.String("faults", "", "fault scenario (preset name or scenario JSON path): append a degraded-mode delta table for the base configuration")
	fastpathFlag := flag.String("fastpath", "on", "analytic fast path for contention-free simulations: off, on, or verify (run both, panic on divergence)")
	shards := flag.Int("shards", 1, "event-queue shards per simulation engine (node-affinity partition; results identical at any count)")
	flag.Parse()
	sweep.SetConcurrency(*jobs)

	fpMode, err := iophases.ParseFastPath(*fastpathFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		os.Exit(2)
	}
	iophases.SetFastPath(fpMode)
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "ioexplore: -shards %d: shard count must be >= 1\n", *shards)
		os.Exit(2)
	}
	iophases.SetShards(*shards)

	// Enable run telemetry before any simulation is built: engines, links
	// and devices pick up their metric handles at construction time.
	if *metrics != "" || *timeline != "" {
		obs.SetEnabled(true)
	}
	if *timeline != "" {
		obs.StartTimeline(0)
	}

	stopProf, err := prof.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		}
		if err := prof.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		}
	}()

	m, err := iophases.LoadModel(*modelPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		os.Exit(1)
	}
	cfg, ok := iophases.ConfigByName(*base)
	if !ok {
		fmt.Fprintf(os.Stderr, "ioexplore: unknown configuration %q\n", *base)
		os.Exit(1)
	}
	if m.NP > cfg.MaxProcs() {
		fmt.Fprintf(os.Stderr, "ioexplore: model needs %d processes; %s holds %d\n",
			m.NP, cfg.Name, cfg.MaxProcs())
		os.Exit(1)
	}

	fmt.Printf("what-if exploration for %s (%d processes, %d phases), base %s:\n\n",
		m.App, m.NP, len(m.Phases), cfg.Name)
	results, err := iophases.Explore(m, iophases.StandardVariants(cfg))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
		os.Exit(1)
	}
	var rows [][]string
	baselineSec := 0.0
	for _, r := range results {
		if r.Variant.Name == "baseline" {
			baselineSec = r.Total.Seconds()
		}
	}
	for rank, r := range results {
		speedup := "-"
		if baselineSec > 0 {
			speedup = fmt.Sprintf("%.2fx", baselineSec/r.Total.Seconds())
		}
		rows = append(rows, []string{
			fmt.Sprint(rank + 1), r.Variant.Name,
			fmt.Sprintf("%.2f s", r.Total.Seconds()), speedup,
		})
	}
	fmt.Print(report.Table("", []string{"rank", "variant", "Time_io(CH)", "vs baseline"}, rows))
	fmt.Printf("\nbest: %s\n", results[0].Variant.Name)

	if *faultsFlag != "" {
		sch, err := iophases.ResolveFaults(*faultsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
			os.Exit(1)
		}
		cmp, err := iophases.CompareDegraded(m, cfg, sch, 512*units.MiB, 8*units.MiB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioexplore: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ndegraded-mode analysis under scenario %q:\n\n", sch.Name)
		fmt.Print(report.Degraded(cmp))
	}

	if err := report.SaveTelemetry(*metrics, *timeline); err != nil {
		fmt.Fprintf(os.Stderr, "ioexplore: telemetry: %v\n", err)
		os.Exit(1)
	}
}
