// Command iozonesim runs the IOzone benchmark replica directly against the
// I/O devices of a simulated configuration (the paper's Table IV surface),
// reporting per-pattern bandwidths and the configuration's peak BW_PK
// (Eq. 3–4).
//
// Usage:
//
//	iozonesim -config configA -s 2g -y 8m
//	iozonesim -config configB -s 1g -y 1m -pattern strided -stride 4
//	iozonesim -config configC -peak          # Eq. 3–4 summary only
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iophases"
	"iophases/internal/cluster"
	"iophases/internal/iozone"
	"iophases/internal/report"
	"iophases/internal/units"
)

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = units.KiB, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = units.MiB, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = units.GiB, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func main() {
	config := flag.String("config", "configA", "target configuration")
	fz := flag.String("s", "2g", "file size (-s); the paper requires >= 2x RAM")
	rs := flag.String("y", "8m", "request size (-y)")
	pat := flag.String("pattern", "", "sequential | strided | random (default: all)")
	stride := flag.Int64("stride", 4, "stride count for -pattern strided")
	peak := flag.Bool("peak", false, "only report BW_PK per Eq. 3-4")
	flag.Parse()

	cfg, ok := iophases.ConfigByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "iozonesim: unknown configuration %q\n", *config)
		os.Exit(1)
	}
	fileSize, err := parseSize(*fz)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iozonesim: -s: %v\n", err)
		os.Exit(1)
	}
	reqSize, err := parseSize(*rs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iozonesim: -y: %v\n", err)
		os.Exit(1)
	}

	if *peak {
		w, r := iophases.PeakBandwidth(cfg, fileSize, reqSize)
		fmt.Printf("BW_PK(%s) over %d I/O node(s): write %.1f MB/s, read %.1f MB/s\n",
			cfg.Name, cfg.Storage.IONodes, w.MBpsValue(), r.MBpsValue())
		return
	}

	patterns := []iozone.Pattern{iozone.Sequential, iozone.Strided, iozone.Random}
	if *pat != "" {
		patterns = []iozone.Pattern{iozone.Pattern(*pat)}
	}
	var rows [][]string
	for ion := 0; ion < cfg.Storage.IONodes; ion++ {
		for _, p := range patterns {
			params := iophases.IOzoneParams{
				FileSize: fileSize, RequestSize: reqSize,
				Pattern: p, StrideCount: *stride,
			}
			if err := params.Validate(); err != nil {
				fmt.Fprintf(os.Stderr, "iozonesim: %v\n", err)
				os.Exit(1)
			}
			c := cluster.Build(cfg)
			res := iozone.RunOnDevice(c.Eng, c.IODevice(ion), params)
			rows = append(rows, []string{
				fmt.Sprintf("ion%02d", ion), string(p),
				units.FormatBytes(fileSize), units.FormatBytes(reqSize),
				fmt.Sprintf("%.1f", res.WriteBW.MBpsValue()),
				fmt.Sprintf("%.1f", res.ReadBW.MBpsValue()),
				fmt.Sprintf("%.0f", res.IOPSw),
				fmt.Sprintf("%.0f", res.IOPSr),
			})
		}
	}
	fmt.Print(report.Table(
		fmt.Sprintf("IOzone on %s devices", cfg.Name),
		[]string{"node", "pattern", "FZ", "RS", "BW_w", "BW_r", "IOPS_w", "IOPS_r"}, rows))
}
