// Command iomodel extracts the application I/O abstract model from traces
// produced by iotrace: local access patterns, cross-rank I/O phases with
// weights and offset functions, and derived metadata (§III-A1). The model
// can be saved as JSON for use by iopredict on other configurations.
//
// Usage:
//
//	iomodel -traces traces/ -save model.json
//	iomodel -traces traces/ -laps      # also print per-rank LAP tables
//	iomodel -traces traces/ -pattern   # also print the access-pattern plot
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
	"iophases/internal/pattern"
	"iophases/internal/report"
	"iophases/internal/trace"
)

func main() {
	dir := flag.String("traces", "traces", "directory with meta.json and trace.<rank>.txt")
	save := flag.String("save", "", "write the model as JSON to this path")
	laps := flag.Bool("laps", false, "print local access patterns per rank (Figure 3)")
	plot := flag.Bool("pattern", false, "print the global access pattern plot (Figure 5)")
	summary := flag.Bool("summary", false, "print a darshan-style aggregate summary")
	ranks := flag.Int("lapranks", 4, "how many ranks to print LAPs for")
	compare := flag.String("compare", "", "compare against another saved model (independence check)")
	flag.Parse()

	set, err := trace.Load(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iomodel: loading traces: %v\n", err)
		os.Exit(1)
	}

	if *laps {
		n := *ranks
		if n > set.NP {
			n = set.NP
		}
		for rank := 0; rank < n; rank++ {
			ls := pattern.Extract(rank, set.DataEvents(rank))
			fmt.Printf("Local access patterns, process %d:\n%s\n", rank, pattern.FormatTable(ls))
		}
	}

	if *summary {
		fmt.Println(trace.Summarize(set))
	}

	m := iophases.Extract(set)
	fmt.Println(m)

	if *plot {
		var pts []report.ScatterPoint
		for _, ap := range m.AccessPoints() {
			marker := byte('W')
			if ap.Dir == "R" {
				marker = 'R'
			}
			pts = append(pts, report.ScatterPoint{X: float64(ap.Tick), Y: float64(ap.Offset), Marker: marker})
		}
		fmt.Println(report.Scatter("Global access pattern", 100, 24, pts))
	}

	if *compare != "" {
		other, err := iophases.LoadModel(*compare)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iomodel: loading %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if m.SameShape(other) {
			fmt.Printf("models are identical in shape (traced on %s vs %s):\n",
				m.SourceConfig, other.SourceConfig)
			fmt.Println("the I/O model is independent of the subsystem.")
		} else {
			fmt.Println("models DIFFER:")
			for _, line := range m.Diff(other) {
				fmt.Println("  -", line)
			}
			os.Exit(1)
		}
	}

	if *save != "" {
		if err := m.Save(*save); err != nil {
			fmt.Fprintf(os.Stderr, "iomodel: saving model: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to %s\n", *save)
	}
}
