// Command iomodel extracts the application I/O abstract model from traces
// produced by iotrace: local access patterns, cross-rank I/O phases with
// weights and offset functions, and derived metadata (§III-A1). The model
// can be saved as JSON for use by iopredict on other configurations.
//
// Usage:
//
//	iomodel -traces traces/ -save model.json
//	iomodel -traces traces/ -laps      # also print per-rank LAP tables
//	iomodel -traces traces/ -pattern   # also print the access-pattern plot
//	iomodel -traces traces/ -stream    # bounded-memory streaming extraction
//
// With -stream the traces are never materialized: events flow from the
// per-rank files (text or binary) through the incremental miner, so memory
// stays bounded by process count and pattern count. The model printed is
// byte-identical to the in-memory path's. -memlimit N additionally checks
// at exit that the heap stayed under N bytes (for the CI memory smoke).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"iophases"
	"iophases/internal/pattern"
	"iophases/internal/report"
	"iophases/internal/trace"
)

func main() {
	dir := flag.String("traces", "traces", "directory with meta.json and per-rank trace files")
	save := flag.String("save", "", "write the model as JSON to this path")
	laps := flag.Bool("laps", false, "print local access patterns per rank (Figure 3)")
	plot := flag.Bool("pattern", false, "print the global access pattern plot (Figure 5)")
	summary := flag.Bool("summary", false, "print a darshan-style aggregate summary")
	ranks := flag.Int("lapranks", 4, "how many ranks to print LAPs for")
	compare := flag.String("compare", "", "compare against another saved model (independence check)")
	stream := flag.Bool("stream", false, "stream the traces through the bounded-memory pipeline")
	memlimit := flag.Int64("memlimit", 0, "fail (exit 3) if the heap exceeded this many bytes at exit")
	flag.Parse()

	var m *iophases.Model
	if *stream {
		if *summary {
			fail("-summary needs the events in memory; drop -stream")
		}
		if *laps {
			fail("-laps needs the events in memory; drop -stream")
		}
		src, err := iophases.OpenTraceDir(*dir)
		if err != nil {
			fail("opening traces: %v", err)
		}
		if m, err = iophases.ExtractStream(src); err != nil {
			fail("extracting: %v", err)
		}
	} else {
		set, err := trace.Load(*dir)
		if err != nil {
			fail("loading traces: %v", err)
		}
		if *laps {
			n := *ranks
			if n > set.NP {
				n = set.NP
			}
			for rank := 0; rank < n; rank++ {
				ls := pattern.Extract(rank, set.DataEvents(rank))
				fmt.Printf("Local access patterns, process %d:\n%s\n", rank, pattern.FormatTable(ls))
			}
		}
		if *summary {
			fmt.Println(trace.Summarize(set))
		}
		m = iophases.Extract(set)
	}
	fmt.Println(m)

	if *plot {
		var pts []report.ScatterPoint
		for _, ap := range m.AccessPoints() {
			marker := byte('W')
			if ap.Dir == "R" {
				marker = 'R'
			}
			pts = append(pts, report.ScatterPoint{X: float64(ap.Tick), Y: float64(ap.Offset), Marker: marker})
		}
		fmt.Println(report.Scatter("Global access pattern", 100, 24, pts))
	}

	if *compare != "" {
		other, err := iophases.LoadModel(*compare)
		if err != nil {
			fail("loading %s: %v", *compare, err)
		}
		if m.SameShape(other) {
			fmt.Printf("models are identical in shape (traced on %s vs %s):\n",
				m.SourceConfig, other.SourceConfig)
			fmt.Println("the I/O model is independent of the subsystem.")
		} else {
			fmt.Println("models DIFFER:")
			for _, line := range m.Diff(other) {
				fmt.Println("  -", line)
			}
			os.Exit(1)
		}
	}

	if *save != "" {
		if err := m.Save(*save); err != nil {
			fail("saving model: %v", err)
		}
		fmt.Printf("model saved to %s\n", *save)
	}

	if *memlimit > 0 {
		// HeapSys only grows, so it reflects the peak heap footprint; the
		// report goes to stderr to keep stdout byte-comparable across modes.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapSys > uint64(*memlimit) {
			fmt.Fprintf(os.Stderr, "iomodel: heap peaked at %d bytes, over the %d-byte limit\n",
				ms.HeapSys, *memlimit)
			os.Exit(3)
		}
		fmt.Fprintf(os.Stderr, "iomodel: heap peaked at %d bytes (limit %d)\n", ms.HeapSys, *memlimit)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "iomodel: "+format+"\n", args...)
	os.Exit(1)
}
