// Command iosched is the co-scheduling explorer for application I/O
// models (§IV-A's "planning the parallel applications taking into account
// when the I/O phases are done"): it places N jobs on one cluster by
// minimizing the byte-weighted overlap of their I/O phases, and — with
// -sim — cross-validates the analytic plan against a true simulated
// co-execution in which every job's phases contend on one shared fabric
// and filesystem.
//
// Usage:
//
//	iosched -a jobA-model.json -b jobB-model.json
//	iosched -jobs a.json,b.json,c.json -window 60 -step 0.5
//	iosched -jobs a.json,b.json -sim -config configA -grid 8 -j 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"iophases"
	"iophases/internal/coexec"
	"iophases/internal/report"
	"iophases/internal/schedule"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
	"iophases/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parse, validate, plan, and (with -sim)
// simulate. Exit codes: 0 success, 1 runtime failure (unreadable model,
// infeasible simulation), 2 usage error.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iosched", flag.ContinueOnError)
	fs.SetOutput(stderr)
	aPath := fs.String("a", "", "model JSON of the first (anchor) job")
	bPath := fs.String("b", "", "model JSON of the job to place")
	jobsCSV := fs.String("jobs", "", "comma-separated model JSON files (N >= 2 jobs; replaces -a/-b)")
	window := fs.Float64("window", 0, "max start offset to consider, seconds (default: anchor job's I/O horizon)")
	step := fs.Float64("step", 0.5, "offset search step, seconds (must be positive)")
	sim := fs.Bool("sim", false, "cross-validate the plan by simulated co-execution on a shared cluster")
	configName := fs.String("config", "configA", "cluster configuration for -sim")
	grid := fs.Int("grid", 0, "with -sim: also simulate this many extra evenly spaced offsets of the last job")
	workers := fs.Int("j", 0, "parallel simulations for the -sim offset grid (0 = GOMAXPROCS)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	usage := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "iosched: "+format+"\n", args...)
		fs.Usage()
		return 2
	}

	// Validate flags up front: a zero or negative step would silently
	// degrade the search to the naive co-start plan (BestOffset's guard
	// returns offset 0), which is a wrong answer, not a default.
	if *step <= 0 {
		return usage("-step must be positive, got %g", *step)
	}
	if *window < 0 {
		return usage("-window must be non-negative, got %g", *window)
	}
	if *grid < 0 {
		return usage("-grid must be non-negative, got %d", *grid)
	}
	if *workers < 0 {
		return usage("-j must be non-negative, got %d", *workers)
	}
	var paths []string
	if *jobsCSV != "" {
		if *aPath != "" || *bPath != "" {
			return usage("-jobs replaces -a/-b; use one or the other")
		}
		for _, p := range strings.Split(*jobsCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				paths = append(paths, p)
			}
		}
		if len(paths) < 2 {
			return usage("-jobs needs at least 2 model files, got %d", len(paths))
		}
	} else {
		if *aPath == "" || *bPath == "" {
			return usage("-a and -b model files are required (or -jobs for N jobs)")
		}
		paths = []string{*aPath, *bPath}
	}
	cfg, ok := iophases.ConfigByName(*configName)
	if *sim && !ok {
		return usage("unknown -config %q", *configName)
	}

	models := make([]*iophases.Model, len(paths))
	for i, p := range paths {
		m, err := iophases.LoadModel(p)
		if err != nil {
			fmt.Fprintf(stderr, "iosched: %v\n", err)
			return 1
		}
		models[i] = m
	}
	timelines := make([][]schedule.Interval, len(models))
	for i, m := range models {
		if timelines[i] = schedule.Timeline(m); timelines[i] == nil {
			fmt.Fprintf(stderr, "iosched: model %s lacks phase timing (rescaled models cannot be scheduled)\n", paths[i])
			return 1
		}
	}
	win := *window
	if win <= 0 {
		win = schedule.Makespan(timelines[0])
	}

	for i, m := range models {
		fmt.Fprintf(stdout, "job %d: %s (%d phases, I/O horizon %.2fs)\n",
			i, m.App, len(m.Phases), schedule.Makespan(timelines[i]))
	}
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "compute gaps of the anchor job (where later phases fit for free):")
	var rows [][]string
	for _, g := range schedule.Gaps(timelines[0]) {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", g.Start), fmt.Sprintf("%.2f", g.End),
			fmt.Sprintf("%.2f", g.End-g.Start),
		})
	}
	fmt.Fprint(stdout, report.Table("", []string{"from (s)", "to (s)", "length (s)"}, rows))

	plans, err := schedule.PlanJobs(models, win, *step)
	if err != nil {
		fmt.Fprintf(stderr, "iosched: %v\n", err)
		return 1
	}
	offsets := make([]float64, len(plans))
	zeros := make([]float64, len(plans))
	for i, p := range plans {
		offsets[i] = p.OffsetSec
	}
	naiveScore := schedule.TotalOverlap(timelines, zeros)
	planScore := schedule.TotalOverlap(timelines, offsets)
	rows = rows[:0]
	for i, p := range plans {
		rows = append(rows, []string{models[i].App,
			fmt.Sprintf("+%.2f", p.OffsetSec), fmt.Sprintf("%.0f", p.Score)})
	}
	fmt.Fprint(stdout, report.Table("\nplanned schedule:",
		[]string{"job", "start offset (s)", "added contention (bytes)"}, rows))
	fmt.Fprintf(stdout, "\nco-start contention:      %.0f contended bytes\n", naiveScore)
	fmt.Fprintf(stdout, "planned contention:       %.0f contended bytes", planScore)
	if naiveScore > 0 {
		fmt.Fprintf(stdout, "  (%.1f%% reduction)", 100*(naiveScore-planScore)/naiveScore)
	}
	fmt.Fprintln(stdout)

	if !*sim {
		return 0
	}
	return simulate(stdout, stderr, cfg, models, offsets, naiveScore, planScore, win, *grid, *workers)
}

// simulate cross-validates the analytic plan: both schedules (co-start
// and planned) run as true co-executions on one shared simulated cluster,
// plus each job alone for the contention-free baseline; an optional
// offset grid of the last job sweeps over the worker pool.
func simulate(stdout, stderr io.Writer, cfg iophases.Config, models []*iophases.Model,
	offsets []float64, naiveScore, planScore float64, win float64, grid, workers int) int {
	sweep.SetConcurrency(workers)
	spec := func(offs []float64) coexec.Spec {
		apps := make([]coexec.App, len(models))
		for i, m := range models {
			apps[i] = coexec.App{Name: fmt.Sprintf("job%d:%s", i, m.App), Model: m, OffsetSec: offs[i]}
		}
		return coexec.Spec{Config: cfg, Apps: apps}
	}
	costart, err := simcache.RunCoexec(spec(make([]float64, len(models))))
	if err != nil {
		fmt.Fprintf(stderr, "iosched: %v\n", err)
		return 1
	}
	planned, err := simcache.RunCoexec(spec(offsets))
	if err != nil {
		fmt.Fprintf(stderr, "iosched: %v\n", err)
		return 1
	}
	var isolated units.Duration
	iso := make([]units.Duration, len(models))
	for i, m := range models {
		r, err := simcache.RunCoexec(coexec.Spec{Config: cfg,
			Apps: []coexec.App{{Name: fmt.Sprintf("job%d:%s", i, m.App), Model: m}}})
		if err != nil {
			fmt.Fprintf(stderr, "iosched: %v\n", err)
			return 1
		}
		iso[i] = r.Apps[0].TimeIO
		isolated += iso[i]
	}

	fmt.Fprintf(stdout, "\nsimulated co-execution on %s (shared fabric + filesystem):\n", cfg.Name)
	var rows [][]string
	var wr, rd int64
	for i, ar := range planned.Apps {
		rows = append(rows, []string{
			ar.Name, fmt.Sprintf("+%.2f", ar.OffsetSec),
			fmt.Sprintf("%.3f", ar.TimeIO.Seconds()),
			fmt.Sprintf("%.3f", iso[i].Seconds()),
			fmt.Sprintf("%.3f", (ar.TimeIO - iso[i]).Seconds()),
			fmt.Sprintf("%.1f", float64(ar.Acct.BytesWritten)/float64(units.MiB)),
			fmt.Sprintf("%.1f", float64(ar.Acct.BytesRead)/float64(units.MiB)),
		})
		wr += ar.Acct.BytesWritten
		rd += ar.Acct.BytesRead
	}
	fmt.Fprint(stdout, report.Table("per-app attribution under the planned schedule:",
		[]string{"job", "offset (s)", "Time_io (s)", "isolated (s)", "excess (s)",
			"written (MiB)", "read (MiB)"}, rows))
	if wr != planned.FSWritten || rd != planned.FSRead {
		fmt.Fprintf(stderr, "iosched: attribution leak: apps wrote %d read %d, filesystem saw %d/%d\n",
			wr, rd, planned.FSWritten, planned.FSRead)
		return 1
	}
	fmt.Fprintf(stdout, "attribution check: per-app bytes sum exactly to filesystem totals (%d written, %d read)\n",
		planned.FSWritten, planned.FSRead)

	costartT := costart.TotalTimeIO
	plannedT := planned.TotalTimeIO
	fmt.Fprintf(stdout, "\ntotal Time_io: isolated %.3fs, co-start %.3fs, planned %.3fs\n",
		isolated.Seconds(), costartT.Seconds(), plannedT.Seconds())
	if plannedT < costartT {
		fmt.Fprintf(stdout, "verdict: planned schedule beats co-start (%.3fs < %.3fs)\n",
			plannedT.Seconds(), costartT.Seconds())
	} else {
		fmt.Fprintf(stdout, "verdict: planned schedule does not beat co-start (%.3fs >= %.3fs)\n",
			plannedT.Seconds(), costartT.Seconds())
	}

	// Eq. 6-style cross-validation of the analytic score as a contention
	// predictor: compare the contention reduction the planner promised
	// (overlap-score fraction) with the reduction the simulation
	// delivered (excess-Time_io fraction).
	excessNaive := (costartT - isolated).Seconds()
	excessPlan := (plannedT - isolated).Seconds()
	if naiveScore > 0 && excessNaive > 0 {
		predicted := 100 * (1 - planScore/naiveScore)
		delivered := 100 * (1 - excessPlan/excessNaive)
		fmt.Fprintf(stdout, "contention reduction: analytic predicts %.1f%%, simulation delivers %.1f%% (rel-err %.1f%%)\n",
			predicted, delivered, iophases.RelativeError(predicted, delivered))
	}

	if grid > 0 {
		last := len(models) - 1
		points := make([]float64, grid+1)
		for i := range points {
			points[i] = float64(i) * win / float64(grid)
		}
		results := sweep.Map(points, func(_ int, off float64) *coexec.Result {
			offs := append([]float64(nil), offsets...)
			offs[last] = off
			r, err := simcache.RunCoexec(spec(offs))
			if err != nil {
				return nil
			}
			return r
		})
		rows = rows[:0]
		tls := make([][]schedule.Interval, len(models))
		for i, m := range models {
			tls[i] = schedule.Timeline(m)
		}
		for i, r := range results {
			offs := append([]float64(nil), offsets...)
			offs[last] = points[i]
			simCol := "infeasible"
			if r != nil {
				simCol = fmt.Sprintf("%.3f", r.TotalTimeIO.Seconds())
			}
			rows = append(rows, []string{
				fmt.Sprintf("+%.2f", points[i]),
				fmt.Sprintf("%.0f", schedule.TotalOverlap(tls, offs)),
				simCol,
			})
		}
		fmt.Fprint(stdout, report.Table(
			fmt.Sprintf("\noffset grid for the last job (%d simulated points):", grid+1),
			[]string{"offset (s)", "analytic score (bytes)", "simulated total Time_io (s)"}, rows))
	}
	return 0
}
