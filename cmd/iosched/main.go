// Command iosched plans the co-scheduling of two applications from their
// I/O models (§IV-A's "planning the parallel applications taking into
// account when the I/O phases are done"): it scores start offsets for the
// second job by the byte-weighted overlap of the jobs' I/O phases and
// reports the offset that steers job B's phases into job A's compute gaps.
//
// Usage:
//
//	iosched -a jobA-model.json -b jobB-model.json
//	iosched -a a.json -b b.json -window 60 -step 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
	"iophases/internal/report"
	"iophases/internal/schedule"
)

func main() {
	aPath := flag.String("a", "", "model JSON of the first (anchor) job")
	bPath := flag.String("b", "", "model JSON of the job to place")
	window := flag.Float64("window", 0, "max start offset to consider, seconds (default: A's I/O horizon)")
	step := flag.Float64("step", 0.5, "offset search step, seconds")
	flag.Parse()

	if *aPath == "" || *bPath == "" {
		fmt.Fprintln(os.Stderr, "iosched: -a and -b model files are required")
		os.Exit(2)
	}
	load := func(path string) *iophases.Model {
		m, err := iophases.LoadModel(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "iosched: %v\n", err)
			os.Exit(1)
		}
		return m
	}
	a, b := load(*aPath), load(*bPath)
	ta := schedule.Timeline(a)
	tb := schedule.Timeline(b)
	if ta == nil || tb == nil {
		fmt.Fprintln(os.Stderr, "iosched: models lack phase timing (rescaled models cannot be scheduled)")
		os.Exit(1)
	}
	win := *window
	if win <= 0 {
		win = schedule.Makespan(ta)
	}

	fmt.Printf("job A: %s (%d phases, I/O horizon %.2fs)\n", a.App, len(a.Phases), schedule.Makespan(ta))
	fmt.Printf("job B: %s (%d phases, I/O horizon %.2fs)\n\n", b.App, len(b.Phases), schedule.Makespan(tb))

	fmt.Println("compute gaps of job A (where B's phases fit for free):")
	var rows [][]string
	for _, g := range schedule.Gaps(ta) {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", g.Start), fmt.Sprintf("%.2f", g.End),
			fmt.Sprintf("%.2f", g.End-g.Start),
		})
	}
	fmt.Print(report.Table("", []string{"from (s)", "to (s)", "length (s)"}, rows))

	best, naive := iophases.BestStartOffset(a, b, win, *step)
	fmt.Printf("\nco-start contention:      %.0f contended bytes\n", naive.Score)
	fmt.Printf("best offset: +%.2fs  ->  %.0f contended bytes", best.OffsetSec, best.Score)
	if naive.Score > 0 {
		fmt.Printf("  (%.1f%% reduction)", 100*(naive.Score-best.Score)/naive.Score)
	}
	fmt.Println()
}
