package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/core"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/runner"
	"iophases/internal/units"
)

// saveModels traces two small MADBench2 jobs and writes their models as
// JSON, returning the paths — the same artifact flow the CLI consumes.
func saveModels(t *testing.T) (a, b string) {
	t.Helper()
	dir := t.TempDir()
	write := func(name string, rs int64) string {
		params := madbench.Default()
		params.RS = rs
		params.FileName = "/" + name + ".dat"
		res := runner.Run(cluster.ConfigA(), 4, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
			return madbench.Program(sys, params)
		}, runner.Options{Trace: true})
		path := filepath.Join(dir, name+".json")
		if err := core.Build(res.Set).Save(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return write("a", units.MiB), write("b", 2*units.MiB)
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestUsageErrorsExitTwo pins the flag-validation contract: bad flags are
// usage errors (exit 2 with a diagnostic), never silent degradation to
// the naive plan.
func TestUsageErrorsExitTwo(t *testing.T) {
	a, b := saveModels(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero step", []string{"-a", a, "-b", b, "-step", "0"}, "-step must be positive"},
		{"negative step", []string{"-a", a, "-b", b, "-step", "-0.5"}, "-step must be positive"},
		{"negative window", []string{"-a", a, "-b", b, "-window", "-1"}, "-window must be non-negative"},
		{"negative grid", []string{"-jobs", a + "," + b, "-sim", "-grid", "-2"}, "-grid must be non-negative"},
		{"negative workers", []string{"-jobs", a + "," + b, "-sim", "-j", "-1"}, "-j must be non-negative"},
		{"no inputs", nil, "-a and -b model files are required"},
		{"one job", []string{"-jobs", a}, "needs at least 2 model files"},
		{"jobs plus ab", []string{"-jobs", a + "," + b, "-a", a, "-b", b}, "-jobs replaces -a/-b"},
		{"bad config", []string{"-jobs", a + "," + b, "-sim", "-config", "nope"}, `unknown -config "nope"`},
		{"unknown flag", []string{"-frobnicate"}, ""},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", tc.name, code, stderr)
		}
		if tc.want != "" && !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: stderr %q missing %q", tc.name, stderr, tc.want)
		}
	}
}

func TestMissingModelFileExitsOne(t *testing.T) {
	a, _ := saveModels(t)
	code, _, stderr := runCLI(t, "-a", a, "-b", filepath.Join(t.TempDir(), "nope.json"))
	if code != 1 || stderr == "" {
		t.Fatalf("exit %d stderr %q, want 1 with a diagnostic", code, stderr)
	}
}

func TestAnalyticPlanOutput(t *testing.T) {
	a, b := saveModels(t)
	code, stdout, stderr := runCLI(t, "-a", a, "-b", b)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"planned schedule:", "co-start contention:", "compute gaps"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, "simulated co-execution") {
		t.Error("-sim output present without -sim")
	}
}

// TestSimCrossValidation runs the full -sim path: the planned schedule
// must beat co-start in simulated total Time_io, attribution must
// reconcile, and the output must be byte-identical at any worker count.
func TestSimCrossValidation(t *testing.T) {
	a, b := saveModels(t)
	args := []string{"-jobs", a + "," + b, "-sim", "-grid", "3"}
	code, j1, stderr := runCLI(t, append(args, "-j", "1")...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{
		"verdict: planned schedule beats co-start",
		"attribution check: per-app bytes sum exactly to filesystem totals",
		"contention reduction: analytic predicts",
		"offset grid for the last job",
	} {
		if !strings.Contains(j1, want) {
			t.Errorf("output missing %q:\n%s", want, j1)
		}
	}
	code, j8, _ := runCLI(t, append(args, "-j", "8")...)
	if code != 0 {
		t.Fatalf("-j 8 exit %d", code)
	}
	if j1 != j8 {
		t.Fatalf("-j 1 and -j 8 outputs differ:\n%s\n---\n%s", j1, j8)
	}
}
