// Command iorsim runs the IOR benchmark replica on a simulated
// configuration, with the parameter surface of the paper's Table III.
//
// Usage:
//
//	iorsim -config configA -np 16 -b 64m -t 4m -s 1 -w -r
//	iorsim -config configB -np 8 -b 32m -t 1m -F        # file per process
//	iorsim -config configC -np 16 -b 256m -t 32m -c -e  # collective, fsync
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"iophases"
	"iophases/internal/units"
)

// parseSize accepts "32m", "1g", "256k" or plain bytes.
func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = units.KiB, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = units.MiB, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = units.GiB, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

func main() {
	config := flag.String("config", "configA", "target configuration")
	np := flag.Int("np", 4, "number of processes")
	b := flag.String("b", "64m", "block size per process (-b)")
	t := flag.String("t", "4m", "transfer size (-t)")
	s := flag.Int("s", 1, "segments (-s)")
	write := flag.Bool("w", true, "write pass (-w)")
	read := flag.Bool("r", true, "read pass (-r)")
	fpp := flag.Bool("F", false, "file per process (-F)")
	coll := flag.Bool("c", false, "collective I/O (-c)")
	fsync := flag.Bool("e", false, "fsync in timed write pass (-e)")
	reorder := flag.Bool("C", false, "reorder read tasks (-C)")
	inter := flag.Bool("z", false, "transfer-interleaved layout")
	flag.Parse()

	cfg, ok := iophases.ConfigByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "iorsim: unknown configuration %q\n", *config)
		os.Exit(1)
	}
	bs, err := parseSize(*b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: -b: %v\n", err)
		os.Exit(1)
	}
	ts, err := parseSize(*t)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: -t: %v\n", err)
		os.Exit(1)
	}
	p := iophases.IORParams{
		NP: *np, BlockSize: bs, Transfer: ts, Segments: *s,
		DoWrite: *write, DoRead: *read, FilePerProc: *fpp,
		Collective: *coll, Fsync: *fsync, ReorderRead: *reorder,
		Interleaved: *inter,
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "iorsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("IOR on %s: np=%d b=%s t=%s s=%d F=%v c=%v e=%v (aggregate %s/pass)\n",
		cfg.Name, *np, units.FormatBytes(bs), units.FormatBytes(ts), *s,
		*fpp, *coll, *fsync, units.FormatBytes(p.AggregateBytes()))
	res := iophases.RunIOR(cfg, p)
	if p.DoWrite {
		fmt.Printf("write: %10.2f MB/s  %8.0f IOPS  %10.4f s\n",
			res.WriteBW.MBpsValue(), res.IOPSw, res.WriteTime.Seconds())
	}
	if p.DoRead {
		fmt.Printf("read:  %10.2f MB/s  %8.0f IOPS  %10.4f s\n",
			res.ReadBW.MBpsValue(), res.IOPSr, res.ReadTime.Seconds())
	}
}
