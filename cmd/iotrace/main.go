// Command iotrace runs an application kernel on a simulated I/O
// configuration with the PAS2P-style interposition tracer and writes the
// per-rank trace files plus metadata — the characterization stage of the
// paper (§III-A). It also converts saved trace directories between the
// text and binary encodings and generates synthetic traces for
// streaming-pipeline benchmarks.
//
// Usage:
//
//	iotrace -app madbench2 -config configA -np 16 -out traces/
//	iotrace -app btio -class C -np 16 -config configB -out traces/
//	iotrace -app btio -class D -np 64 -subtype simple -out traces/
//	iotrace -app btio -np 16 -out traces/ -format binary
//	iotrace -convert traces/ -out traces-bin/ -format binary
//	iotrace -synth -np 8 -events 10000000 -out synth/ -format binary
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
	"iophases/internal/units"
)

func main() {
	app := flag.String("app", "madbench2", "application kernel: madbench2 | btio | roms")
	config := flag.String("config", "configA", "configuration: configA | configB | configC | finisterrae")
	np := flag.Int("np", 16, "number of MPI processes")
	out := flag.String("out", "traces", "output directory for trace files")
	class := flag.String("class", "C", "BT-IO class: A | B | C | D | W")
	subtype := flag.String("subtype", "full", "BT-IO subtype: full | simple")
	nbin := flag.Int("nbin", 8, "MADBench2 bin count")
	kpix := flag.Int("kpix", 8, "MADBench2 pixel count (KPIX); sets the request size")
	format := flag.String("format", "text", "per-rank trace encoding: text | binary")
	convert := flag.String("convert", "", "re-encode this saved trace directory into -out with -format")
	synth := flag.Bool("synth", false, "generate a synthetic trace instead of running a kernel")
	events := flag.Int64("events", 1_000_000, "synthetic events per rank (-synth)")
	flag.Parse()

	f, err := iophases.TraceText, error(nil)
	if f, err = parseFormat(*format); err != nil {
		fail("%v", err)
	}

	if *convert != "" {
		if err := iophases.ConvertTraces(*convert, *out, f); err != nil {
			fail("converting %s: %v", *convert, err)
		}
		fmt.Printf("converted %s to %s (%s per-rank files)\n", *convert, *out, f)
		return
	}

	if *synth {
		src, err := iophases.SynthTraces(iophases.SynthSpec{NP: *np, EventsPerRank: *events})
		if err != nil {
			fail("%v", err)
		}
		if err := writeDir(src, *out, f); err != nil {
			fail("writing synthetic trace: %v", err)
		}
		fmt.Printf("synthetic trace saved to %s: np=%d, %d events/rank, %s format\n",
			*out, *np, *events, f)
		return
	}

	cfg, ok := iophases.ConfigByName(*config)
	if !ok {
		fail("unknown configuration %q", *config)
	}
	if *np > cfg.MaxProcs() {
		fail("%d processes exceed %s capacity (%d)", *np, cfg.Name, cfg.MaxProcs())
	}

	var res iophases.RunResult
	switch *app {
	case "madbench2":
		params := iophases.DefaultMADBench()
		params.NBin = *nbin
		params.RS = kpixRS(*kpix, *np)
		fmt.Printf("tracing MADBench2: np=%d nbin=%d rs=%s on %s\n",
			*np, *nbin, units.FormatBytes(params.RS), cfg.Name)
		res = iophases.TraceMADBench2(cfg, *np, params, iophases.RunOptions{})
	case "btio":
		cl, ok := iophases.BTIOClassByName(*class)
		if !ok {
			fail("unknown BT-IO class %q", *class)
		}
		params := iophases.DefaultBTIO(cl)
		params.Subtype = *subtype
		fmt.Printf("tracing BT-IO class %s (%s): np=%d rs=%s on %s\n",
			cl.Name, *subtype, *np, units.FormatBytes(cl.RS(*np)), cfg.Name)
		res = iophases.TraceBTIO(cfg, *np, params, iophases.RunOptions{})
	case "roms":
		params := iophases.DefaultROMS()
		fmt.Printf("tracing ROMS upwelling: np=%d grid=%dx%dx%d on %s\n",
			*np, params.NX, params.NY, params.NZ, cfg.Name)
		res = iophases.TraceROMS(cfg, *np, params, iophases.RunOptions{})
	default:
		fail("unknown app %q (madbench2 | btio | roms)", *app)
	}

	if err := saveSet(res.Set, *out, f); err != nil {
		fail("saving traces: %v", err)
	}
	w, r := res.Set.TotalBytes()
	fmt.Printf("run complete: %v virtual time, %s written, %s read\n",
		res.Elapsed, units.FormatBytes(w), units.FormatBytes(r))
	fmt.Printf("traces saved to %s (meta.json + trace.<rank>%s)\n", *out, fileExt(f))
}

func parseFormat(s string) (iophases.TraceFormat, error) {
	switch s {
	case "text":
		return iophases.TraceText, nil
	case "binary":
		return iophases.TraceBinary, nil
	}
	return iophases.TraceText, fmt.Errorf("unknown format %q (want text or binary)", s)
}

func saveSet(set *iophases.TraceSet, dir string, f iophases.TraceFormat) error {
	if f == iophases.TraceBinary {
		return set.SaveBinary(dir)
	}
	return set.Save(dir)
}

// writeDir drains a source into a trace directory rank by rank.
func writeDir(src iophases.TraceSource, dir string, f iophases.TraceFormat) error {
	return iophases.WriteTraceDir(src, dir, f)
}

func fileExt(f iophases.TraceFormat) string {
	if f == iophases.TraceBinary {
		return ".bin"
	}
	return ".txt"
}

// kpixRS is the per-process request size for a KPIX pixel map.
func kpixRS(kpix, np int) int64 {
	npix := int64(kpix) * 1024
	return npix * npix * 8 / int64(np)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "iotrace: "+format+"\n", args...)
	os.Exit(1)
}
