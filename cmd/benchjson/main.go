// Command benchjson converts `go test -bench` text output on stdin into a
// JSON benchmark report on stdout, so bench.sh can commit machine-readable
// perf snapshots (BENCH_<n>.json) and the trajectory stays diffable across
// PRs.
//
// Usage:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH_1.json
//	benchjson -gate BENCH_1.json current.json
//
// With -gate, benchjson compares two reports instead of converting: it
// exits nonzero when any benchmark's allocs/op grew more than 10% over the
// baseline. CI runs it against the latest committed BENCH_<n>.json so
// allocation regressions fail the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64             `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	gate := flag.Bool("gate", false,
		"compare two reports (baseline current) instead of converting; exit 1 on allocs/op regression")
	flag.Parse()
	if *gate {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -gate BASELINE.json CURRENT.json")
			os.Exit(2)
		}
		failed, err := runGate(flag.Arg(0), flag.Arg(1), os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}
	rep := convert(os.Stdin)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// convert parses `go test -bench` text output into a Report.
func convert(in io.Reader) Report {
	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Package = pkg
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	return rep
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  100  12345 ns/op  67 B/op  8 allocs/op  3.5 extra/unit
//
// Fields after the iteration count come in (value, unit) pairs.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			n := int64(val)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(val)
			b.AllocsPerOp = &n
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, b.NsPerOp > 0
}
