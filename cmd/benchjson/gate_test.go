package main

import (
	"strings"
	"testing"
)

func i64(n int64) *int64 { return &n }

func report(bs ...Benchmark) Report { return Report{Benchmarks: bs} }

func bench(name string, allocs int64) Benchmark {
	return Benchmark{Name: name, Package: "p", NsPerOp: 1, AllocsPerOp: i64(allocs)}
}

func TestGateAllocsWithinLimitPasses(t *testing.T) {
	base := report(bench("A", 100), bench("B", 6))
	cur := report(bench("A", 110), bench("B", 6)) // exactly +10%: allowed
	if v := gateAllocs(base, cur); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
}

func TestGateAllocsRegressionFails(t *testing.T) {
	base := report(bench("A", 100), bench("B", 6))
	cur := report(bench("A", 111), bench("B", 6)) // +11%: regression
	v := gateAllocs(base, cur)
	if len(v) != 1 || !strings.Contains(v[0], "p.A") ||
		!strings.Contains(v[0], "100 -> 111") {
		t.Fatalf("violations = %v, want one naming p.A 100 -> 111", v)
	}
}

func TestGateZeroAllocBaselineIsStrict(t *testing.T) {
	base := report(bench("A", 0))
	cur := report(bench("A", 1))
	if v := gateAllocs(base, cur); len(v) != 1 {
		t.Fatalf("losing a zero-alloc property must fail the gate, got %v", v)
	}
	if v := gateAllocs(base, report(bench("A", 0))); len(v) != 0 {
		t.Fatalf("staying at zero allocs must pass, got %v", v)
	}
}

func TestGateSkipsUnmatchedBenchmarks(t *testing.T) {
	base := report(bench("Old", 5))
	cur := report(bench("New", 5000)) // no baseline: not gated
	if v := gateAllocs(base, cur); len(v) != 0 {
		t.Fatalf("new benchmark must not trip the gate: %v", v)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	base := report(bench("A", 100))
	cur := report(bench("A", 3))
	if v := gateAllocs(base, cur); len(v) != 0 {
		t.Fatalf("improvement flagged as regression: %v", v)
	}
}

// The converter and the gate agree on shape: a report round-tripped from
// bench text gates cleanly against itself.
func TestConvertThenGateRoundTrip(t *testing.T) {
	text := `goos: linux
goarch: amd64
pkg: iophases/internal/des
cpu: test
BenchmarkEngine-8   	    2000	    500000 ns/op	    9680 B/op	       6 allocs/op
PASS
`
	rep := convert(strings.NewReader(text))
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "BenchmarkEngine" {
		t.Fatalf("convert parsed %+v", rep.Benchmarks)
	}
	if v := gateAllocs(rep, rep); len(v) != 0 {
		t.Fatalf("self-gate violations: %v", v)
	}
}
