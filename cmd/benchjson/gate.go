package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// allocGrowthLimit is the allowed relative growth in allocs/op before the
// gate fails. Allocation counts are deterministic (unlike ns/op, which is
// hostage to the runner's load), so a >10% jump is a real regression, not
// noise.
const allocGrowthLimit = 0.10

// runGate compares the current benchmark report against a committed
// baseline and reports every benchmark whose allocs/op grew beyond
// allocGrowthLimit. Benchmarks present only on one side are skipped —
// new benchmarks have no baseline, and retired ones no current value.
func runGate(basePath, curPath string, w io.Writer) (failed bool, err error) {
	base, err := loadReport(basePath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadReport(curPath)
	if err != nil {
		return false, fmt.Errorf("current: %w", err)
	}
	violations := gateAllocs(base, cur)
	for _, v := range violations {
		fmt.Fprintln(w, v)
	}
	if len(violations) == 0 {
		fmt.Fprintf(w, "benchjson: gate ok, %d benchmarks within %.0f%% of %s\n",
			len(cur.Benchmarks), allocGrowthLimit*100, basePath)
	}
	return len(violations) > 0, nil
}

// gateAllocs returns one human-readable violation per benchmark whose
// allocs/op grew more than allocGrowthLimit over the baseline. Growth from
// a zero-alloc baseline is always a violation: the fractional threshold is
// meaningless at zero, and losing a zero-allocation property is exactly the
// regression the gate exists to catch.
func gateAllocs(base, cur Report) []string {
	baseline := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Package+"."+b.Name] = b
	}
	var out []string
	for _, c := range cur.Benchmarks {
		b, ok := baseline[c.Package+"."+c.Name]
		if !ok || b.AllocsPerOp == nil || c.AllocsPerOp == nil {
			continue
		}
		was, now := *b.AllocsPerOp, *c.AllocsPerOp
		bad := false
		switch {
		case was == 0:
			bad = now > 0
		default:
			bad = float64(now-was)/float64(was) > allocGrowthLimit
		}
		if bad {
			out = append(out, fmt.Sprintf(
				"benchjson: ALLOC REGRESSION %s.%s: %d -> %d allocs/op (limit +%.0f%%)",
				c.Package, c.Name, was, now, allocGrowthLimit*100))
		}
	}
	return out
}

func loadReport(path string) (Report, error) {
	var r Report
	f, err := os.Open(path)
	if err != nil {
		return r, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
