package main

import (
	"fmt"

	"iophases"
	"iophases/internal/cluster"
	"iophases/internal/iozone"
	"iophases/internal/report"
	"iophases/internal/units"
)

func table8(e *env) {
	res := iophases.TraceMADBench2(iophases.ConfigA(), 16, iophases.DefaultMADBench(), iophases.RunOptions{})
	m := iophases.Extract(res.Set)
	fmt.Fprintln(e.out, m)
	fmt.Fprintln(e.out, "Metadata (paper §IV-A): individual file pointers, non-collective,")
	fmt.Fprintln(e.out, "blocking, sequential access mode, shared access type — derived above.")
	fmt.Fprintln(e.out, accessScatter("Figure 7 — MADBench2 16p global access pattern", m, 100, 20))
}

// utilizationTable renders Table IX/X: per-phase measured bandwidth against
// the IOzone device peak.
func utilizationTable(e *env, cfg iophases.Config, np int) {
	params := iophases.DefaultMADBench()
	res := iophases.TraceMADBench2(cfg, np, params, iophases.RunOptions{})
	m := iophases.Extract(res.Set)
	pkW, pkR := iophases.PeakBandwidth(cfg, 2*units.GiB, params.RS)
	fmt.Fprintf(e.out, "BW_PK(%s): write %.0f MB/s, read %.0f MB/s (IOzone, Eq. 3–4)\n\n",
		cfg.Name, pkW.MBpsValue(), pkR.MBpsValue())
	var rows [][]string
	for _, pm := range m.Phases {
		bwMD := iophases.MeasuredBandwidth(pm)
		pk := pkW
		switch pm.Direction() {
		case "R":
			pk = pkR
		case "W-R":
			pk = (pkW + pkR) / 2
		}
		rows = append(rows, []string{
			fmt.Sprint(pm.ID),
			fmt.Sprintf("%d %s", len(pm.Ops)*pm.Rep*pm.NP, pm.Direction()),
			units.FormatBytes(pm.Weight),
			fmt.Sprintf("%.0f", pk.MBpsValue()),
			fmt.Sprintf("%.0f", bwMD.MBpsValue()),
			fmt.Sprintf("%.0f", iophases.Usage(bwMD, pk)),
		})
	}
	fmt.Fprint(e.out, report.Table(
		fmt.Sprintf("MADBench2 %dp, shared file, on %s", np, cfg.Name),
		[]string{"Phase", "#Oper.", "weight", "BW_PK", "BW_MD", "Usage%"}, rows))
}

func table9(e *env)  { utilizationTable(e, iophases.ConfigA(), 16) }
func table10(e *env) { utilizationTable(e, iophases.ConfigB(), 16) }

// classDFor returns the class D geometry, scaled down under -quick.
func classDFor(e *env) iophases.BTIOClass {
	class := iophases.ClassD
	if e.quick {
		class.TimeSteps = 50 // 10 dumps instead of 50
	}
	return class
}

func table11(e *env) {
	fmt.Fprintln(e.out, "Class C (16 processes, configuration A):")
	mC := iophases.Extract(iophases.TraceBTIO(iophases.ConfigA(), 16,
		iophases.DefaultBTIO(iophases.ClassC), iophases.RunOptions{}).Set)
	printModelSummary(e, mC)

	class := classDFor(e)
	fmt.Fprintln(e.out, "\nClass D (36 processes, configuration C):")
	mD := iophases.Extract(iophases.TraceBTIO(iophases.ConfigC(), 36,
		iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
	printModelSummary(e, mD)

	fmt.Fprintln(e.out, "\nClass D (36 processes, Finisterrae):")
	mF := iophases.Extract(iophases.TraceBTIO(iophases.Finisterrae(), 36,
		iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
	printModelSummary(e, mF)
	if mD.SameShape(mF) {
		fmt.Fprintln(e.out, "\n=> same class D model on configuration C and Finisterrae (Figure 10).")
	} else {
		fmt.Fprintln(e.out, "\n!! class D models differ across configurations")
	}
}

func table12(e *env) {
	class := classDFor(e)
	m := iophases.Extract(iophases.TraceBTIO(iophases.ConfigC(), 64,
		iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
	var rows [][]string
	var totals [2]float64
	configs := []iophases.Config{iophases.ConfigC(), iophases.Finisterrae()}
	ests := make([]*iophases.Estimate, len(configs))
	for i, cfg := range configs {
		ests[i] = mustEstimate(m, cfg)
	}
	groups := mustCompare(ests[0], m)
	for gi := range groups {
		row := []string{groups[gi].Label}
		for i := range configs {
			g := mustCompare(ests[i], m)[gi]
			row = append(row, fmt.Sprintf("%.2f", g.TimeCH.Seconds()))
			totals[i] += g.TimeCH.Seconds()
		}
		rows = append(rows, row)
	}
	rows = append(rows, []string{"Total",
		fmt.Sprintf("%.2f", totals[0]), fmt.Sprintf("%.2f", totals[1])})
	fmt.Fprint(e.out, report.Table("Time_io(CH) in seconds for BT-IO class D, 64 processes",
		[]string{"Phase", "on configC", "on Finisterrae"}, rows))
	winner := "configC"
	if totals[1] < totals[0] {
		winner = "Finisterrae"
	}
	fmt.Fprintf(e.out, "\n=> configuration with less I/O time: %s (paper: Finisterrae)\n", winner)
}

// errorTable renders Tables XIII/XIV: characterized vs measured per phase
// group with relative errors.
func errorTable(e *env, cfg iophases.Config, nps []int) {
	class := classDFor(e)
	for _, np := range nps {
		m := iophases.Extract(iophases.TraceBTIO(cfg, np,
			iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
		est := mustEstimate(m, cfg)
		var rows [][]string
		for _, g := range mustCompare(est, m) {
			rows = append(rows, []string{
				g.Label,
				fmt.Sprintf("%.2f", g.TimeCH.Seconds()),
				fmt.Sprintf("%.2f", g.TimeMD.Seconds()),
				fmt.Sprintf("%.0f%%", g.RelErr),
			})
		}
		fmt.Fprint(e.out, report.Table(
			fmt.Sprintf("BT-IO class %s, %d processes, on %s", class.Name, np, cfg.Name),
			[]string{"Phase", "Time_io(CH)", "Time_io(MD)", "error_rel"}, rows))
		fmt.Fprintln(e.out)
	}
}

func table13(e *env) { errorTable(e, iophases.ConfigC(), []int{36, 64, 121}) }
func table14(e *env) { errorTable(e, iophases.Finisterrae(), []int{64}) }

func phase3note(e *env) {
	fmt.Fprintln(e.out, "Per-phase estimation error for MADBench2 (the paper's §V notes the")
	fmt.Fprintln(e.out, "characterization error grows for complex phases — ≈50% for phase 3 —")
	fmt.Fprintln(e.out, "because IOR cannot replay two interleaved operations in one phase;")
	fmt.Fprintln(e.out, "BW_CH is the average of separate write and read runs):")
	for _, cfg := range []iophases.Config{iophases.ConfigA(), iophases.ConfigB()} {
		m := iophases.Extract(iophases.TraceMADBench2(cfg, 16,
			iophases.DefaultMADBench(), iophases.RunOptions{}).Set)
		est := mustEstimate(m, cfg)
		var rows [][]string
		for _, g := range mustCompare(est, m) {
			kind := "pure"
			for _, pm := range m.Phases {
				if fmt.Sprintf("Phase %d", pm.ID) == g.Label && pm.Direction() == "W-R" {
					kind = "mixed W-R"
				}
			}
			rows = append(rows, []string{
				g.Label, kind,
				fmt.Sprintf("%.2f", g.TimeCH.Seconds()),
				fmt.Sprintf("%.2f", g.TimeMD.Seconds()),
				fmt.Sprintf("%.0f%%", g.RelErr),
			})
		}
		fmt.Fprint(e.out, report.Table("MADBench2 16p on "+cfg.Name,
			[]string{"Phase", "kind", "Time_CH", "Time_MD", "error_rel"}, rows))
		fmt.Fprintln(e.out)
	}
}

func sweepExp(e *env) {
	cfg := iophases.ConfigA()
	fmt.Fprintln(e.out, "IOR characterization sweep on configuration A (Table III parameters):")
	var rows [][]string
	for _, np := range []int{1, 4, 16} {
		for _, t := range []int64{256 * units.KiB, 4 * units.MiB, 32 * units.MiB} {
			p := iophases.IORParams{
				NP: np, BlockSize: 64 * units.MiB, Transfer: t, Segments: 1,
				DoWrite: true, DoRead: true, Fsync: true,
			}
			res := iophases.RunIOR(cfg, p)
			rows = append(rows, []string{
				fmt.Sprint(np), units.FormatBytes(64 * units.MiB), units.FormatBytes(t),
				fmt.Sprintf("%.1f", res.WriteBW.MBpsValue()),
				fmt.Sprintf("%.1f", res.ReadBW.MBpsValue()),
				fmt.Sprintf("%.0f", res.IOPSw),
				fmt.Sprintf("%.0f", res.IOPSr),
			})
		}
	}
	fmt.Fprint(e.out, report.Table("", []string{"NP", "b", "t", "BW_w", "BW_r", "IOPS_w", "IOPS_r"}, rows))

	fmt.Fprintln(e.out, "\nIOzone device sweep on configuration A's RAID (Table IV parameters):")
	var zrows [][]string
	for _, rs := range []int64{256 * units.KiB, units.MiB, 8 * units.MiB} {
		for _, pat := range []iozone.Pattern{iozone.Sequential, iozone.Strided, iozone.Random} {
			c := buildCluster(cfg)
			p := iophases.IOzoneParams{
				FileSize: 2 * units.GiB, RequestSize: rs, Pattern: pat, StrideCount: 4,
			}
			r := iozone.RunOnDevice(c.Eng, c.IODevice(0), p)
			zrows = append(zrows, []string{
				units.FormatBytes(2 * units.GiB), units.FormatBytes(rs), string(pat),
				fmt.Sprintf("%.1f", r.WriteBW.MBpsValue()),
				fmt.Sprintf("%.1f", r.ReadBW.MBpsValue()),
			})
		}
	}
	fmt.Fprint(e.out, report.Table("", []string{"FZ", "RS", "AM", "BW_w", "BW_r"}, zrows))
}

// buildCluster builds a fresh cluster for device-level sweeps.
func buildCluster(cfg iophases.Config) *cluster.Cluster { return cluster.Build(cfg) }

func romsext(e *env) {
	fmt.Fprintln(e.out, "The paper's §V names two future directions: modeling applications that")
	fmt.Fprintln(e.out, "open several files through parallel HDF5 (ROMS upwelling), and using a")
	fmt.Fprintln(e.out, "simulator (SIMCAN) to evaluate hypothetical configurations. Both are")
	fmt.Fprintln(e.out, "implemented here.")
	fmt.Fprintln(e.out)
	params := iophases.DefaultROMS()
	run := iophases.TraceROMS(iophases.ConfigA(), 8, params, iophases.RunOptions{})
	m := iophases.Extract(run.Set)
	var rows [][]string
	for _, f := range m.Files {
		phases, weight := 0, int64(0)
		for _, ph := range m.Phases {
			if ph.File == f.ID {
				phases++
				weight += ph.Weight
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(f.ID), f.Name, fmt.Sprint(phases), units.FormatBytes(weight),
		})
	}
	fmt.Fprint(e.out, report.Table("per-file I/O model (idF of Table I):",
		[]string{"idF", "file", "phases", "weight"}, rows))

	fmt.Fprintln(e.out, "\nwhat-if exploration from the configA baseline:")
	results := mustExplore(m, iophases.StandardVariants(iophases.ConfigA()))
	var xr [][]string
	for rank, r := range results {
		xr = append(xr, []string{fmt.Sprint(rank + 1), r.Variant.Name,
			fmt.Sprintf("%.3f s", r.Total.Seconds())})
	}
	fmt.Fprint(e.out, report.Table("", []string{"rank", "variant", "Time_io(CH)"}, xr))
}

func replayerext(e *env) {
	fmt.Fprintln(e.out, "The paper's §V: \"We are designing benchmark to replicate the I/O when")
	fmt.Fprintln(e.out, "there are 2 o more operations in a phase to fit the characterization")
	fmt.Fprintln(e.out, "better and reduce estimation error.\" That benchmark is implemented: it")
	fmt.Fprintln(e.out, "replays a phase's exact interleaved operation sequence with its slot")
	fmt.Fprintln(e.out, "skews. Comparison for MADBench2's mixed phase 3:")
	fmt.Fprintln(e.out)
	for _, cfg := range []iophases.Config{iophases.ConfigA(), iophases.ConfigB()} {
		m := iophases.Extract(iophases.TraceMADBench2(cfg, 16,
			iophases.DefaultMADBench(), iophases.RunOptions{}).Set)
		iorEst := mustEstimate(m, cfg)
		faithEst := mustEstimateFaithful(m, cfg)
		var rows [][]string
		for i, pm := range m.Phases {
			if len(pm.Ops) < 2 {
				continue
			}
			md := pm.MeasuredSec
			a, b := iorEst.Phases[i].TimeCH.Seconds(), faithEst.Phases[i].TimeCH.Seconds()
			rows = append(rows, []string{
				fmt.Sprintf("Phase %d", pm.ID),
				fmt.Sprintf("%.2f", md),
				fmt.Sprintf("%.2f (%.0f%%)", a, iophases.RelativeError(a, md)),
				fmt.Sprintf("%.2f (%.0f%%)", b, iophases.RelativeError(b, md)),
			})
		}
		fmt.Fprint(e.out, report.Table("on "+cfg.Name,
			[]string{"mixed phase", "Time_MD", "IOR average (err)", "faithful replay (err)"}, rows))
		fmt.Fprintln(e.out)
	}
}

func rescaleext(e *env) {
	fmt.Fprintln(e.out, "Extension: characterize once at small scale, predict at large scale.")
	fmt.Fprintln(e.out, "The Table XI offset functions are parametric in np, so a model traced")
	fmt.Fprintln(e.out, "at 16 processes rescales exactly to 64 — and its replayed estimate")
	fmt.Fprintln(e.out, "matches the estimate from a model actually traced at 64:")
	fmt.Fprintln(e.out)
	class := classDFor(e)
	m16 := iophases.Extract(iophases.TraceBTIO(iophases.ConfigC(), 16,
		iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
	m64scaled, err := iophases.Rescale(m16, 64)
	if err != nil {
		fmt.Fprintln(e.out, "rescale failed:", err)
		return
	}
	m64actual := iophases.Extract(iophases.TraceBTIO(iophases.ConfigC(), 64,
		iophases.DefaultBTIO(class), iophases.RunOptions{}).Set)
	estScaled := mustEstimate(m64scaled, iophases.ConfigC())
	estActual := mustEstimate(m64actual, iophases.ConfigC())
	var rows [][]string
	gs := mustCompare(estScaled, m64actual)
	ga := mustCompare(estActual, m64actual)
	for i := range gs {
		rows = append(rows, []string{
			gs[i].Label,
			fmt.Sprintf("%.2f", gs[i].TimeCH.Seconds()),
			fmt.Sprintf("%.2f", ga[i].TimeCH.Seconds()),
			fmt.Sprintf("%.2f", ga[i].TimeMD.Seconds()),
			fmt.Sprintf("%.0f%%", iophases.RelativeError(
				gs[i].TimeCH.Seconds(), ga[i].TimeMD.Seconds())),
		})
	}
	fmt.Fprint(e.out, report.Table("BT-IO class D on configC: 16p-model rescaled to 64p",
		[]string{"Phase", "CH (rescaled 16p->64p)", "CH (traced 64p)", "MD (64p)", "err vs MD"}, rows))
}

func schedext(e *env) {
	fmt.Fprintln(e.out, "Extension (§IV-A): \"This view of application I/O can be useful ... for")
	fmt.Fprintln(e.out, "the planning the parallel applications taking into account when the I/O")
	fmt.Fprintln(e.out, "phases are done.\" Two MADBench2 jobs share configuration A; the planner")
	fmt.Fprintln(e.out, "offsets job B so its I/O phases land in job A's compute gaps:")
	fmt.Fprintln(e.out)
	const np = 8
	rs := int64(8) << 20
	mk := func(file string) iophases.Program {
		params := iophases.DefaultMADBench()
		params.RS = rs
		params.FileName = file
		return func(sys *iophases.System) func(*iophases.Rank) {
			return madbenchProgram(sys, params)
		}
	}
	trace := func(file string) *iophases.Model {
		p := iophases.DefaultMADBench()
		p.RS = rs
		p.FileName = file
		return iophases.Extract(iophases.TraceMADBench2(iophases.ConfigA(), np, p, iophases.RunOptions{}).Set)
	}
	a, b := trace("/a.dat"), trace("/b.dat")
	win := 0.0
	for _, pm := range a.Phases {
		if end := pm.StartSec + pm.MeasuredSec; end > win {
			win = end
		}
	}
	best, naive := iophases.BestStartOffset(a, b, win, 0.5)
	fmt.Fprintf(e.out, "contention score: co-start %.0f bytes, offset %.1fs -> %.0f bytes\n\n",
		naive.Score, best.OffsetSec, best.Score)

	runPair := func(offset float64) (aEnd, bEnd float64) {
		results := iophases.RunConcurrent(iophases.ConfigA(), []iophases.Job{
			{Name: "jobA", NP: np, Prog: mk("/a.dat")},
			{Name: "jobB", NP: np, Prog: mk("/b.dat"), StartDelay: iophases.Duration(offset * 1e9)},
		}, false)
		return results[0].End.Seconds(), results[1].End.Seconds()
	}
	a0, b0 := runPair(0)
	a1, b1 := runPair(best.OffsetSec)
	var rows [][]string
	rows = append(rows, []string{"co-start (naive)", fmt.Sprintf("%.2f", a0), fmt.Sprintf("%.2f", b0)})
	rows = append(rows, []string{fmt.Sprintf("planned +%.1fs", best.OffsetSec), fmt.Sprintf("%.2f", a1), fmt.Sprintf("%.2f", b1)})
	fmt.Fprint(e.out, report.Table("empirical validation (both jobs on one simulated cluster):",
		[]string{"schedule", "job A ends (s)", "job B ends (s)"}, rows))
	fmt.Fprintf(e.out, "\njob A finishes %.1f%% earlier under the planned schedule.\n",
		100*(a0-a1)/a0)
}
