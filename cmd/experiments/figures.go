package main

import (
	"fmt"

	"iophases"
	"iophases/internal/apps/madbench"
	"iophases/internal/pattern"
	"iophases/internal/report"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// exampleTrace runs the paper's running example (Figures 1–5): the BT-IO
// class C write/read pattern, shown for the first four ranks.
func exampleTrace() *iophases.TraceSet {
	res := iophases.TraceBTIO(iophases.ConfigA(), 16,
		iophases.DefaultBTIO(iophases.ClassC), iophases.RunOptions{})
	return res.Set
}

func figure2(e *env) {
	set := exampleTrace()
	for rank := 0; rank < 2; rank++ {
		fmt.Fprintf(e.out, "TraceFile of process %d (first 4 data rows):\n", rank)
		evs := set.DataEvents(rank)
		if len(evs) > 4 {
			evs = evs[:4]
		}
		if err := trace.WriteText(e.out, evs); err != nil {
			fmt.Fprintln(e.out, "error:", err)
		}
		fmt.Fprintln(e.out)
	}
	fmt.Fprintln(e.out, "Offsets are in etype units (etype = 40 bytes, five doubles);")
	fmt.Fprintln(e.out, "request size 10612080 B ≈ the paper's class C / 16 processes value.")
}

func figure3(e *env) {
	set := exampleTrace()
	for rank := 0; rank < 4; rank++ {
		laps := pattern.Extract(rank, set.DataEvents(rank))
		fmt.Fprintf(e.out, "Local access pattern of process %d:\n%s\n", rank, pattern.FormatTable(laps))
	}
}

func figure4(e *env) {
	set := exampleTrace()
	m := iophases.Extract(set)
	fmt.Fprintln(e.out, "First two phases (per-process detail, Figure 4 layout):")
	for _, pm := range m.Phases[:2] {
		fmt.Fprintf(e.out, "Phase %d\n", pm.ID)
		fmt.Fprintf(e.out, "%-4s %-4s %-26s %-12s %-6s %s\n", "IdP", "IdF", "MPI-Operation", "Offset", "tick", "RequestSize")
		fn := pm.OffsetFn()
		for rank := 0; rank < 4; rank++ {
			rep := pm.FamilyRep
			if rep == 0 {
				rep = 1
			}
			fmt.Fprintf(e.out, "%-4d %-4d %-26s %-12d %-6d %d\n",
				rank, pm.File, pm.Ops[0].Op, fn.Eval(rank, rep)/40, pm.Tick, pm.Ops[0].Size)
		}
		fmt.Fprintln(e.out)
	}
	fmt.Fprintf(e.out, "All phases:\n")
	printModelTable(e, m)
}

func figure5(e *env) {
	set := exampleTrace()
	m := iophases.Extract(set)
	fmt.Fprintln(e.out, m)
	fmt.Fprintln(e.out, accessScatter("Global access pattern (tick × file offset; 16 processes)", m, 100, 24))
}

func figure6(e *env) {
	p := iophases.IORParams{
		NP: 4, BlockSize: 256 * units.MiB, Transfer: 32 * units.MiB,
		Segments: 1, DoWrite: true, DoRead: true, TraceRun: true,
	}
	res := iophases.RunIOR(iophases.ConfigA(), p)
	m := iophases.Extract(res.Trace)
	fmt.Fprintln(e.out, "I/O model extracted from an IOR run (s=1, b=256MB, t=32MB, np=4):")
	fmt.Fprintln(e.out, m)
	fmt.Fprintln(e.out, accessScatter("IOR global access pattern: one write phase, one read phase", m, 80, 16))
	fmt.Fprintf(e.out, "measured: write %.1f MB/s, read %.1f MB/s\n",
		res.WriteBW.MBpsValue(), res.ReadBW.MBpsValue())
}

func figure8(e *env) {
	params := iophases.DefaultMADBench()
	res := iophases.TraceMADBench2(iophases.ConfigB(), 16, params, iophases.RunOptions{
		MonitorInterval: units.Second,
		DrainAtEnd:      true,
	})
	mon := res.Monitor
	rates := mon.Rates()
	names := mon.Names()
	fmt.Fprintf(e.out, "iostat-style monitoring of the %d PVFS2 I/O-node disks (1s samples):\n\n", len(names))
	for d, name := range names {
		var wr, rd report.Series
		wr = report.Series{Name: "sectors written/s", Marker: 'w'}
		rd = report.Series{Name: "sectors read/s", Marker: 'r'}
		for _, r := range rates {
			t := r.Time.Seconds()
			wr.X = append(wr.X, t)
			wr.Y = append(wr.Y, r.SectorsWrit[d])
			rd.X = append(rd.X, t)
			rd.Y = append(rd.Y, r.SectorsRead[d])
		}
		fmt.Fprintln(e.out, report.TimeSeries(
			fmt.Sprintf("disk %s — sectors per second", name),
			"seconds", "sectors/s", 100, 12,
			[]report.Series{wr, rd}))
	}
	fmt.Fprintln(e.out, "The five MADBench2 phases are visible at the devices: S (writes),")
	fmt.Fprintln(e.out, "W prime reads, the mixed W steady state, the drain writes, and C (reads).")
}

func figure9(e *env) {
	params := iophases.DefaultBTIO(iophases.ClassC)
	mA := iophases.Extract(iophases.TraceBTIO(iophases.ConfigA(), 16, params, iophases.RunOptions{}).Set)
	mB := iophases.Extract(iophases.TraceBTIO(iophases.ConfigB(), 16, params, iophases.RunOptions{}).Set)
	fmt.Fprintln(e.out, "Model extracted on configuration A:")
	printModelSummary(e, mA)
	fmt.Fprintln(e.out, "\nModel extracted on configuration B:")
	printModelSummary(e, mB)
	if mA.SameShape(mB) {
		fmt.Fprintln(e.out, "\n=> identical I/O model on both configurations (subsystem independence).")
	} else {
		fmt.Fprintln(e.out, "\n!! models differ — independence violated")
	}
	fmt.Fprintln(e.out, accessScatter("BT-IO class C, 16 processes — global access pattern", mA, 100, 20))
}

// accessScatter renders a model's access points (Figures 5, 7, 9, 10).
func accessScatter(title string, m *iophases.Model, w, h int) string {
	var pts []report.ScatterPoint
	for _, ap := range m.AccessPoints() {
		marker := byte('W')
		if ap.Dir == "R" {
			marker = 'R'
		}
		pts = append(pts, report.ScatterPoint{
			X: float64(ap.Tick), Y: float64(ap.Offset), Marker: marker,
		})
	}
	return report.Scatter(title, w, h, pts)
}

// printModelTable prints the phase table of a model.
func printModelTable(e *env, m *iophases.Model) {
	var rows [][]string
	for _, pm := range m.Phases {
		rows = append(rows, []string{
			fmt.Sprint(pm.ID),
			fmt.Sprintf("%d %s", len(pm.Ops)*pm.Rep*pm.NP, pm.Direction()),
			units.FormatBytes(pm.RequestSize()),
			fmt.Sprint(pm.Rep),
			units.FormatBytes(pm.Weight),
			fmt.Sprint(pm.Tick),
			pm.OffsetExpr,
		})
	}
	fmt.Fprint(e.out, report.Table("",
		[]string{"Phase", "#Oper.", "rs", "Rep", "weight", "tick", "InitOffset"}, rows))
}

// printModelSummary prints metadata plus a compacted phase listing (phase
// families on one row), the form Figures 9 and 10 convey.
func printModelSummary(e *env, m *iophases.Model) {
	fmt.Fprintf(e.out, "  app=%s np=%d traced-on=%s\n", m.App, m.NP, m.SourceConfig)
	fmt.Fprintf(e.out, "  metadata: %s pointers, collective=%v, %s access mode, %s file\n",
		m.PointerSet, m.Collective, m.AccessMode, m.AccessType)
	var rows [][]string
	for _, fam := range m.Families() {
		first, last := fam[0], fam[len(fam)-1]
		label := fmt.Sprint(first.ID)
		if len(fam) > 1 {
			label = fmt.Sprintf("%d-%d", first.ID, last.ID)
		}
		weight := first.Weight * int64(len(fam))
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%d %s", len(first.Ops)*first.Rep*first.NP, first.Direction()),
			units.FormatBytes(first.RequestSize()),
			fmt.Sprint(first.Rep * len(fam)),
			units.FormatBytes(weight),
			first.OffsetExpr,
		})
	}
	fmt.Fprint(e.out, report.Table("",
		[]string{"Phase", "#Oper./phase", "rs", "Rep", "total weight", "InitOffset"}, rows))
}

// madbenchProgram adapts the public kernel factory for schedext.
func madbenchProgram(sys *iophases.System, p iophases.MADBenchParams) func(*iophases.Rank) {
	res := madbench.Program(sys, p)
	return res
}
