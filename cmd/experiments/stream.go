package main

import (
	"fmt"
	"os"

	"iophases"
)

// streamext demonstrates the bounded-memory extraction path: save a BT-IO
// trace in the binary on-disk format, re-extract it by streaming, and show
// the model is identical to the in-memory extraction — the property that
// lets traces far larger than memory be characterized.
func streamext(e *env) {
	fmt.Fprintln(e.out, "Extension — streaming extraction over the binary trace format. The")
	fmt.Fprintln(e.out, "trace is saved as delta-encoded per-rank binary files, then the model")
	fmt.Fprintln(e.out, "is extracted twice: materialized in memory, and streamed through the")
	fmt.Fprintln(e.out, "incremental miner with memory bounded by np, not trace length.")
	fmt.Fprintln(e.out)

	run := iophases.TraceBTIO(iophases.ConfigA(), 16, iophases.DefaultBTIO(iophases.ClassA), iophases.RunOptions{})
	inMem := iophases.Extract(run.Set)

	dir, err := os.MkdirTemp("", "streamext")
	if err != nil {
		fmt.Fprintf(e.out, "streamext: %v\n", err)
		return
	}
	defer os.RemoveAll(dir)
	if err := run.Set.SaveBinary(dir); err != nil {
		fmt.Fprintf(e.out, "streamext: saving: %v\n", err)
		return
	}
	src, err := iophases.OpenTraceDir(dir)
	if err != nil {
		fmt.Fprintf(e.out, "streamext: opening: %v\n", err)
		return
	}
	streamed, err := iophases.ExtractStream(src)
	if err != nil {
		fmt.Fprintf(e.out, "streamext: extracting: %v\n", err)
		return
	}

	fmt.Fprint(e.out, streamed)
	if streamed.String() == inMem.String() && streamed.SameShape(inMem) {
		fmt.Fprintln(e.out, "\nstreamed extraction is byte-identical to the in-memory model.")
	} else {
		fmt.Fprintln(e.out, "\nstreamed extraction DIVERGES from the in-memory model:")
		for _, line := range streamed.Diff(inMem) {
			fmt.Fprintln(e.out, "  -", line)
		}
	}
}
