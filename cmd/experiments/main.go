// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated I/O configurations. Each experiment prints
// the same rows/series the paper reports; absolute numbers come from the
// simulator, so the comparisons of interest are shapes: who wins, by what
// factor, and whether estimation errors stay below 10%.
//
// Usage:
//
//	experiments -run all            # everything (default)
//	experiments -run table13        # one experiment
//	experiments -run fig7,table9    # a comma-separated subset
//	experiments -quick              # scale class D down for smoke runs
//	experiments -list               # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id    string
	title string
	run   func(e *env)
}

// env carries run-wide options to experiments.
type env struct {
	quick bool
}

var experiments = []experiment{
	{"fig2", "Figure 2 — per-rank trace files (BT-IO class C example)", figure2},
	{"fig3", "Figure 3 — local access patterns (LAP)", figure3},
	{"fig4", "Figure 4 — I/O phases of the example", figure4},
	{"fig5", "Figure 5 — I/O abstract model (global access pattern)", figure5},
	{"fig6", "Figure 6 — I/O model of IOR", figure6},
	{"table8", "Table VIII + Figure 7 — I/O phases of MADBench2 (16p, 32MB, shared)", table8},
	{"table9", "Table IX — system utilization on configuration A", table9},
	{"table10", "Table X — system utilization on configuration B", table10},
	{"fig8", "Figure 8 — device-level monitoring of MADBench2 on configuration B", figure8},
	{"fig9", "Figure 9 — BT-IO class C model on configurations A and B", figure9},
	{"table11", "Table XI + Figure 10 — BT-IO phase description (classes C and D)", table11},
	{"table12", "Table XII — I/O time estimation, class D 64p, configC vs Finisterrae", table12},
	{"table13", "Table XIII — estimation error on configC (36, 64, 121 procs)", table13},
	{"table14", "Table XIV — estimation error on Finisterrae (64 procs)", table14},
	{"phase3note", "§V note — characterization error on mixed/small phases", phase3note},
	{"sweep", "Tables III–V — IOR and IOzone characterization sweeps", sweep},
	{"replayerext", "§V future work — phase-faithful replay benchmark for mixed phases", replayerext},
	{"rescaleext", "extension — rescale a 16p model to 64p and predict", rescaleext},
	{"schedext", "extension — phase-aware co-scheduling of two jobs", schedext},
	{"romsext", "§V future work — ROMS/HDF5 multi-file model + what-if exploration", romsext},
}

func main() {
	runFlag := flag.String("run", "all", "experiment ids (comma separated) or 'all'")
	quick := flag.Bool("quick", false, "scale class D down (fewer dumps) for fast smoke runs")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, ex := range experiments {
			fmt.Printf("%-12s %s\n", ex.id, ex.title)
		}
		return
	}

	want := map[string]bool{}
	if *runFlag != "all" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
		known := map[string]bool{}
		for _, ex := range experiments {
			known[ex.id] = true
		}
		var unknown []string
		for id := range want {
			if !known[id] {
				unknown = append(unknown, id)
			}
		}
		if len(unknown) > 0 {
			sort.Strings(unknown)
			fmt.Fprintf(os.Stderr, "unknown experiment(s): %s (use -list)\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	e := &env{quick: *quick}
	for _, ex := range experiments {
		if *runFlag != "all" && !want[ex.id] {
			continue
		}
		fmt.Printf("\n================================================================\n")
		fmt.Printf("[%s] %s\n", ex.id, ex.title)
		fmt.Printf("================================================================\n")
		start := time.Now()
		ex.run(e)
		fmt.Printf("(%s finished in %.1fs)\n", ex.id, time.Since(start).Seconds())
	}
}
