// Command experiments regenerates every table and figure of the paper's
// evaluation on the simulated I/O configurations. Each experiment prints
// the same rows/series the paper reports; absolute numbers come from the
// simulator, so the comparisons of interest are shapes: who wins, by what
// factor, and whether estimation errors stay below 10%.
//
// Independent experiments run concurrently on a worker pool (-j, default
// GOMAXPROCS). Every experiment writes into a private buffer and buffers
// are flushed to stdout in canonical order, so the output at -j 8 is
// byte-identical to -j 1; timing and cache diagnostics go to stderr.
//
// Usage:
//
//	experiments -run all            # everything (default)
//	experiments -run table13        # one experiment
//	experiments -run fig7,table9    # a comma-separated subset
//	experiments -quick              # scale class D down for smoke runs
//	experiments -j 8                # worker-pool width (0 = GOMAXPROCS)
//	experiments -v                  # timing + simcache stats on stderr
//	experiments -list               # list experiment ids
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"iophases"
	"iophases/internal/obs"
	"iophases/internal/prof"
	"iophases/internal/report"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
)

// experiment is one regenerable table or figure.
type experiment struct {
	id    string
	title string
	run   func(e *env)
}

// env carries run-wide options to experiments plus the experiment's
// private output buffer — experiments must print through e.out so
// concurrent runs never interleave on stdout.
type env struct {
	quick bool
	out   io.Writer
}

var experiments = []experiment{
	{"fig2", "Figure 2 — per-rank trace files (BT-IO class C example)", figure2},
	{"fig3", "Figure 3 — local access patterns (LAP)", figure3},
	{"fig4", "Figure 4 — I/O phases of the example", figure4},
	{"fig5", "Figure 5 — I/O abstract model (global access pattern)", figure5},
	{"fig6", "Figure 6 — I/O model of IOR", figure6},
	{"table8", "Table VIII + Figure 7 — I/O phases of MADBench2 (16p, 32MB, shared)", table8},
	{"table9", "Table IX — system utilization on configuration A", table9},
	{"table10", "Table X — system utilization on configuration B", table10},
	{"fig8", "Figure 8 — device-level monitoring of MADBench2 on configuration B", figure8},
	{"fig9", "Figure 9 — BT-IO class C model on configurations A and B", figure9},
	{"table11", "Table XI + Figure 10 — BT-IO phase description (classes C and D)", table11},
	{"table12", "Table XII — I/O time estimation, class D 64p, configC vs Finisterrae", table12},
	{"table13", "Table XIII — estimation error on configC (36, 64, 121 procs)", table13},
	{"table14", "Table XIV — estimation error on Finisterrae (64 procs)", table14},
	{"phase3note", "§V note — characterization error on mixed/small phases", phase3note},
	{"sweep", "Tables III–V — IOR and IOzone characterization sweeps", sweepExp},
	{"replayerext", "§V future work — phase-faithful replay benchmark for mixed phases", replayerext},
	{"rescaleext", "extension — rescale a 16p model to 64p and predict", rescaleext},
	{"schedext", "extension — phase-aware co-scheduling of two jobs", schedext},
	{"romsext", "§V future work — ROMS/HDF5 multi-file model + what-if exploration", romsext},
	{"streamext", "extension — streaming extraction over the binary trace format", streamext},
}

// selectExperiments resolves a -run flag value against the experiment
// registry, in canonical (registry) order. "all" — alone or inside a list —
// selects everything. Unknown or empty ids are an error, never silently
// skipped.
func selectExperiments(runFlag string) ([]experiment, error) {
	known := map[string]bool{}
	for _, ex := range experiments {
		known[ex.id] = true
	}
	want := map[string]bool{}
	all := false
	for _, id := range strings.Split(runFlag, ",") {
		id = strings.TrimSpace(id)
		switch {
		case id == "all":
			all = true
		case known[id]:
			want[id] = true
		default:
			want[id] = true // collect for the error below
		}
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return nil, fmt.Errorf("unknown experiment(s): %s (use -list)", strings.Join(unknown, ", "))
	}
	if !all && len(want) == 0 {
		return nil, fmt.Errorf("no experiments selected (use -list)")
	}
	var out []experiment
	for _, ex := range experiments {
		if all || want[ex.id] {
			out = append(out, ex)
		}
	}
	return out, nil
}

// runExperiments executes the selection on `workers` pool workers, each
// into a private buffer, and writes the buffers to stdout in selection
// order — output is byte-identical regardless of workers. Per-experiment
// wall-clock goes to errout when verbose. Returns the effective worker
// count (0 resolves to GOMAXPROCS).
func runExperiments(selected []experiment, quick bool, workers int,
	stdout, errout io.Writer, verbose bool) int {
	workers = sweep.SetConcurrency(workers) // 0 resolves to GOMAXPROCS
	defer sweep.SetConcurrency(0)
	outputs := sweep.MapN(workers, selected, func(_ int, ex experiment) []byte {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "\n================================================================\n")
		fmt.Fprintf(&buf, "[%s] %s\n", ex.id, ex.title)
		fmt.Fprintf(&buf, "================================================================\n")
		start := time.Now()
		ex.run(&env{quick: quick, out: &buf})
		if verbose {
			fmt.Fprintf(errout, "[%s] finished in %.1fs\n", ex.id, time.Since(start).Seconds())
		}
		return buf.Bytes()
	})
	for _, out := range outputs {
		stdout.Write(out)
	}
	return workers
}

func main() {
	runFlag := flag.String("run", "all", "experiment ids (comma separated) or 'all'")
	quick := flag.Bool("quick", false, "scale class D down (fewer dumps) for fast smoke runs")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jobs := flag.Int("j", 0, "concurrent experiments (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "per-experiment timing and simulation-cache stats on stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	metrics := flag.String("metrics", "", "write run metrics to this file at exit (.json = JSON, else text)")
	timeline := flag.String("timeline", "", "write a Chrome trace_event timeline (Perfetto-loadable JSON) to this file at exit")
	faultsFlag := flag.String("faults", "", "fault scenario (preset name or scenario JSON path): append a degraded-mode delta analysis")
	fastpathFlag := flag.String("fastpath", "on", "analytic fast path for contention-free simulations: off, on, or verify (run both, panic on divergence)")
	shards := flag.Int("shards", 1, "event-queue shards per simulation engine (node-affinity partition; results identical at any count)")
	flag.Parse()

	fpMode, err := iophases.ParseFastPath(*fastpathFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	iophases.SetFastPath(fpMode)
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -shards %d: shard count must be >= 1\n", *shards)
		os.Exit(2)
	}
	iophases.SetShards(*shards)

	// Enable run telemetry before any simulation is built: engines, links
	// and devices pick up their metric handles at construction time.
	if *metrics != "" || *timeline != "" {
		obs.SetEnabled(true)
	}
	if *timeline != "" {
		obs.StartTimeline(0)
	}

	stopProf, err := prof.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
		if err := prof.WriteHeap(*memprofile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		}
	}()

	if *list {
		for _, ex := range experiments {
			fmt.Printf("%-12s %s\n", ex.id, ex.title)
		}
		return
	}

	selected, err := selectExperiments(*runFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	// Reject a bad -faults argument before any experiment runs: a typo or
	// a malformed scenario file must not cost the whole suite first.
	if *faultsFlag != "" {
		if _, err := iophases.ResolveFaults(*faultsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	workers := runExperiments(selected, *quick, *jobs, os.Stdout, os.Stderr, *verbose)
	if *faultsFlag != "" {
		if err := runFaultsAnalysis(*faultsFlag, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	if *verbose {
		hit, miss, bypass := simcache.Stats()
		total := hit + miss
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(hit) / float64(total)
		}
		fmt.Fprintf(os.Stderr,
			"simcache: %d hits / %d misses (%.0f%% hit rate), %d traced bypasses, %d entries, %d evictions\n",
			hit, miss, pct, bypass, simcache.Len(), simcache.Evictions())
		fpHits, fpBail := iophases.FastPathStats()
		fmt.Fprintf(os.Stderr, "fastpath: %d analytic / %d full-DES fallbacks\n", fpHits, fpBail)
		fmt.Fprintf(os.Stderr, "total wall-clock: %.1fs at -j %d\n",
			time.Since(start).Seconds(), workers)
	}
	if err := report.SaveTelemetry(*metrics, *timeline); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: telemetry: %v\n", err)
		os.Exit(1)
	}
	for _, note := range []struct{ what, path string }{{"metrics", *metrics}, {"timeline", *timeline}} {
		if note.path != "" {
			fmt.Fprintf(os.Stderr, "experiments: wrote %s to %s\n", note.what, note.path)
		}
	}
}
