package main

import (
	"fmt"
	"io"
	"strings"

	"iophases"
	"iophases/internal/report"
	"iophases/internal/units"
)

// runFaultsAnalysis resolves the -faults argument (a named preset or a
// scenario JSON file) and prints the degraded-mode delta analysis: the
// MADBench2 model estimated healthy and under the scenario on
// configurations A and B, so the tables answer "which subsystem degrades
// most gracefully for this access pattern?".
func runFaultsAnalysis(arg string, out io.Writer) error {
	sch, err := iophases.ResolveFaults(arg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n================================================================\n")
	fmt.Fprintf(out, "[faults] degraded-mode analysis under scenario %q\n", sch.Name)
	fmt.Fprintf(out, "================================================================\n")
	fmt.Fprintf(out, "effects: %d; presets available: %s\n\n",
		len(sch.Effects), strings.Join(iophases.FaultPresets(), ", "))

	params := iophases.DefaultMADBench()
	m := iophases.Extract(
		iophases.TraceMADBench2(iophases.ConfigA(), 16, params, iophases.RunOptions{}).Set)

	for _, cfg := range []iophases.Config{iophases.ConfigA(), iophases.ConfigB()} {
		cmp, err := iophases.CompareDegraded(m, cfg, sch, 512*units.MiB, params.RS)
		if err != nil {
			return fmt.Errorf("on %s: %w", cfg.Name, err)
		}
		fmt.Fprint(out, report.Degraded(cmp))
		fmt.Fprintln(out)
	}
	return nil
}
