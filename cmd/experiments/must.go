package main

import "iophases"

// The experiment tables estimate models they just extracted themselves on
// configurations they constructed themselves, so an estimation error here
// is a bug in the experiment driver, not bad user input. These helpers
// keep the table code linear; external inputs (the -faults flag) go
// through the error-returning API instead.

func mustEstimate(m *iophases.Model, cfg iophases.Config) *iophases.Estimate {
	est, err := iophases.EstimateTime(m, cfg)
	if err != nil {
		panic(err)
	}
	return est
}

func mustEstimateFaithful(m *iophases.Model, cfg iophases.Config) *iophases.Estimate {
	est, err := iophases.EstimateTimeFaithful(m, cfg)
	if err != nil {
		panic(err)
	}
	return est
}

func mustCompare(est *iophases.Estimate, m *iophases.Model) []iophases.GroupComparison {
	gs, err := iophases.CompareByFamily(est, m)
	if err != nil {
		panic(err)
	}
	return gs
}

func mustExplore(m *iophases.Model, vs []iophases.Variant) []iophases.ExploreResult {
	rs, err := iophases.Explore(m, vs)
	if err != nil {
		panic(err)
	}
	return rs
}
