package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iophases/internal/obs"
	"iophases/internal/simcache"
	"iophases/internal/sweep"
)

// TestFaultsAnalysisDeterministicAcrossWorkers is the fault engine's
// determinism contract at CLI level: the same scenario produces
// byte-identical stdout and identical injection counters at any -j,
// because every injector's rand stream is consumed in DES event order
// inside its own engine.
func TestFaultsAnalysisDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	run := func(workers int) ([]byte, [3]int64) {
		defer sweep.SetConcurrency(0)
		sweep.SetConcurrency(workers)
		// Cold caches: replays must actually run so the injection
		// counters below count this run's faults, not a warm hit.
		simcache.Reset()
		obs.Default().Reset()
		var out bytes.Buffer
		if err := runFaultsAnalysis("degraded-mix", &out); err != nil {
			t.Fatal(err)
		}
		reg := obs.Default()
		return out.Bytes(), [3]int64{
			reg.Counter("faults/transient_errors").Value(),
			reg.Counter("faults/retries").Value(),
			reg.Counter("faults/backoff_us").Value(),
		}
	}
	serial, cSerial := run(1)
	parallel, cParallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-j 8 faults output (%d bytes) differs from -j 1 (%d bytes)",
			len(parallel), len(serial))
	}
	if cSerial != cParallel {
		t.Fatalf("fault counters differ: -j 1 %v, -j 8 %v", cSerial, cParallel)
	}
	if cSerial[0] == 0 || cSerial[1] == 0 {
		t.Fatalf("degraded-mix injected nothing (counters %v)", cSerial)
	}
	for _, want := range []string{"degraded-mix", "slowdown", "T_healthy", "T_degraded", "configA", "configB"} {
		if !strings.Contains(string(serial), want) {
			t.Fatalf("analysis output missing %q", want)
		}
	}
}

// TestFaultsAnalysisRejectsUnknownScenario pins the CLI diagnostic: a typo
// must come back as an error naming the presets, not a panic.
func TestFaultsAnalysisRejectsUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	err := runFaultsAnalysis("no-such-scenario", &out)
	if err == nil || !strings.Contains(err.Error(), "slow-disk") {
		t.Fatalf("err = %v, want preset-listing diagnostic", err)
	}
}

// TestFaultsAnalysisRejectsBadScenarioFiles drives the -faults flag path
// end to end with broken scenario JSON: malformed syntax, an unknown
// effect kind and an inverted virtual-time window must each surface as
// a diagnostic error before any simulation is built — never a panic,
// never a partial degraded table.
func TestFaultsAnalysisRejectsBadScenarioFiles(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name, body, want string
	}{
		{"malformed.json", `{"effects": [`, "unexpected end"},
		{"unknown-kind.json", `{"effects": [{"kind": "meteor-strike", "fromSec": 1}]}`, "unknown kind"},
		{"inverted.json", `{"effects": [{"kind": "slow-disk", "factor": 2, "fromSec": 5, "forSec": -3}]}`, "end before it starts"},
	}
	for _, tc := range cases {
		path := filepath.Join(dir, tc.name)
		if err := os.WriteFile(path, []byte(tc.body), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := runFaultsAnalysis(path, &out)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
		if out.Len() > 0 {
			t.Errorf("%s: wrote %d bytes of analysis output despite the error", tc.name, out.Len())
		}
	}
}
