package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"iophases/internal/obs"
	"iophases/internal/report"
)

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("all selected %d of %d", len(got), len(experiments))
	}
}

func TestSelectExperimentsSubsetKeepsCanonicalOrder(t *testing.T) {
	// Request out of registry order; selection must come back canonical.
	got, err := selectExperiments("table9, fig3,fig2")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, ex := range got {
		ids = append(ids, ex.id)
	}
	if want := "fig2,fig3,table9"; strings.Join(ids, ",") != want {
		t.Fatalf("selection order %v, want %s", ids, want)
	}
}

func TestSelectExperimentsUnknownIsError(t *testing.T) {
	for _, flag := range []string{"nosuch", "fig2,nosuch", "fig2,,fig3", ""} {
		if _, err := selectExperiments(flag); err == nil {
			t.Errorf("selectExperiments(%q) succeeded, want error", flag)
		}
	}
	// Unknown ids must be named in the message so the failure is actionable.
	_, err := selectExperiments("fig2,bogus1,bogus0")
	if err == nil || !strings.Contains(err.Error(), "bogus0, bogus1") {
		t.Fatalf("error %v does not name the unknown ids", err)
	}
}

func TestSelectExperimentsAllInsideList(t *testing.T) {
	got, err := selectExperiments("fig2,all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("'fig2,all' selected %d of %d", len(got), len(experiments))
	}
}

// TestParallelOutputByteIdentical is the determinism contract of the -j
// flag: the same selection at -j 1 and -j 4 must produce identical stdout
// bytes. Uses a cheap subset so the test stays fast; the full `-run all
// -quick` comparison is exercised by bench.sh / CI.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	selected, err := selectExperiments("fig3,fig5")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		var out bytes.Buffer
		runExperiments(selected, true, workers, &out, &bytes.Buffer{}, false)
		return out.Bytes()
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-j 4 output (%d bytes) differs from -j 1 (%d bytes)",
			len(parallel), len(serial))
	}
	if !bytes.Contains(serial, []byte("[fig3]")) || !bytes.Contains(serial, []byte("[fig5]")) {
		t.Fatal("output missing experiment headers")
	}
}

// TestTelemetryDoesNotPerturbOutput is the observability invariant at CLI
// level: running with metrics + timeline collection enabled must produce
// stdout bytes identical to a run with telemetry off. Telemetry writes only
// to its own files and stderr, and instrumentation never reorders DES
// events.
func TestTelemetryDoesNotPerturbOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	selected, err := selectExperiments("fig3,fig5,table8")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		var out bytes.Buffer
		runExperiments(selected, true, 2, &out, &bytes.Buffer{}, false)
		return out.Bytes()
	}
	plain := run()

	obs.StartTimeline(0) // also enables metric collection
	defer func() {
		obs.StopTimeline()
		obs.SetEnabled(false)
		obs.ResetTelemetry()
		obs.Default().Reset()
	}()
	instrumented := run()

	if !bytes.Equal(plain, instrumented) {
		t.Fatalf("telemetry-enabled stdout (%d bytes) differs from disabled (%d bytes)",
			len(instrumented), len(plain))
	}
	if obs.Default().Counter("des/events_scheduled").Value() == 0 {
		t.Fatal("instrumented run recorded no engine events")
	}
	if obs.Timeline().Len() == 0 {
		t.Fatal("instrumented run recorded no timeline spans")
	}
}

// TestTable12TimelineHasPhaseSpans is the acceptance check on the timeline
// content: a table12 -quick run must emit one span per identified I/O phase
// carrying the weight/rs/np/bandwidth attributes, and the metrics dumps
// (JSON and text) must both render.
func TestTable12TimelineHasPhaseSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	selected, err := selectExperiments("table12")
	if err != nil {
		t.Fatal(err)
	}
	obs.ResetTelemetry()
	obs.Default().Reset()
	obs.StartTimeline(0)
	defer func() {
		obs.StopTimeline()
		obs.SetEnabled(false)
		obs.ResetTelemetry()
		obs.Default().Reset()
	}()
	runExperiments(selected, true, 2, &bytes.Buffer{}, &bytes.Buffer{}, false)

	var tl bytes.Buffer
	if err := obs.Timeline().WriteJSON(&tl); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tl.Bytes(), &doc); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	measured := 0
	for _, r := range obs.Phases() {
		if r.Source == "measured" {
			measured++
		}
	}
	if measured == 0 {
		t.Fatal("table12 recorded no measured phase rows")
	}
	phaseSpans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "B" || !strings.HasPrefix(ev.Name, "phase ") || ev.Args == nil {
			continue
		}
		var args map[string]any
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			t.Fatalf("span args do not parse: %v", err)
		}
		for _, key := range []string{"weight", "rs", "np", "bwMBps"} {
			if _, ok := args[key]; !ok {
				t.Fatalf("phase span %q missing arg %q: %v", ev.Name, key, args)
			}
		}
		phaseSpans++
	}
	if phaseSpans < measured {
		t.Fatalf("%d attributed phase spans for %d measured phases", phaseSpans, measured)
	}

	var js bytes.Buffer
	if err := report.WriteMetricsJSON(&js); err != nil {
		t.Fatal(err)
	}
	var dump map[string]json.RawMessage
	if err := json.Unmarshal(js.Bytes(), &dump); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if dump["metrics"] == nil || dump["phases"] == nil {
		t.Fatalf("metrics dump missing sections: %v", dump)
	}
	var txt bytes.Buffer
	if err := report.WriteMetricsText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "Telemetry:") {
		t.Fatal("text metrics dump missing the Telemetry table")
	}
}
