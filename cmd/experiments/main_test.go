package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSelectExperimentsAll(t *testing.T) {
	got, err := selectExperiments("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("all selected %d of %d", len(got), len(experiments))
	}
}

func TestSelectExperimentsSubsetKeepsCanonicalOrder(t *testing.T) {
	// Request out of registry order; selection must come back canonical.
	got, err := selectExperiments("table9, fig3,fig2")
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, ex := range got {
		ids = append(ids, ex.id)
	}
	if want := "fig2,fig3,table9"; strings.Join(ids, ",") != want {
		t.Fatalf("selection order %v, want %s", ids, want)
	}
}

func TestSelectExperimentsUnknownIsError(t *testing.T) {
	for _, flag := range []string{"nosuch", "fig2,nosuch", "fig2,,fig3", ""} {
		if _, err := selectExperiments(flag); err == nil {
			t.Errorf("selectExperiments(%q) succeeded, want error", flag)
		}
	}
	// Unknown ids must be named in the message so the failure is actionable.
	_, err := selectExperiments("fig2,bogus1,bogus0")
	if err == nil || !strings.Contains(err.Error(), "bogus0, bogus1") {
		t.Fatalf("error %v does not name the unknown ids", err)
	}
}

func TestSelectExperimentsAllInsideList(t *testing.T) {
	got, err := selectExperiments("fig2,all")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(experiments) {
		t.Fatalf("'fig2,all' selected %d of %d", len(got), len(experiments))
	}
}

// TestParallelOutputByteIdentical is the determinism contract of the -j
// flag: the same selection at -j 1 and -j 4 must produce identical stdout
// bytes. Uses a cheap subset so the test stays fast; the full `-run all
// -quick` comparison is exercised by bench.sh / CI.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	selected, err := selectExperiments("fig3,fig5")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		var out bytes.Buffer
		runExperiments(selected, true, workers, &out, &bytes.Buffer{}, false)
		return out.Bytes()
	}
	serial := run(1)
	parallel := run(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("-j 4 output (%d bytes) differs from -j 1 (%d bytes)",
			len(parallel), len(serial))
	}
	if !bytes.Contains(serial, []byte("[fig3]")) || !bytes.Contains(serial, []byte("[fig5]")) {
		t.Fatal("output missing experiment headers")
	}
}
