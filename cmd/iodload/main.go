// Command iodload is the synthetic load harness for iod: it waits for
// readiness, fires N requests at concurrency C against one endpoint, and
// reports latency order statistics (p50/p95/p99/max) and throughput. It
// doubles as an invariant checker: every response to the identical query
// body must be byte-identical — any divergence is a hard failure — and
// -maxp99 turns the latency target into an exit code for CI.
//
// Usage:
//
//	iodload -addr http://localhost:8080                 # 1000 predicts, c=16
//	iodload -quick                                      # 50 requests, c=8 smoke
//	iodload -n 1000 -c 64 -maxp99 10ms                  # CI latency gate
//	iodload -endpoint explore -body '{"model":"madbench2","base":"configA"}'
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"iophases/internal/report"
	"iophases/internal/serve"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "iod base URL")
	endpoint := flag.String("endpoint", "predict", "query endpoint: predict, explore, or compare-degraded")
	body := flag.String("body", "", "request body JSON (default: a builtin madbench2 query for the endpoint)")
	n := flag.Int("n", 1000, "total requests")
	c := flag.Int("c", 16, "concurrent clients")
	quick := flag.Bool("quick", false, "smoke mode: -n 50 -c 8")
	wait := flag.Duration("wait", 30*time.Second, "max time to poll /readyz before starting (0 = don't wait)")
	maxP99 := flag.Duration("maxp99", 0, "fail (exit 1) if p99 latency exceeds this (0 = no gate)")
	ref := flag.Bool("ref", true, "send one sequential reference request before the burst; -ref=false fires the burst cold, so concurrent identical requests race one fingerprint (exercises server-side coalescing)")
	flag.Parse()

	if *quick {
		*n, *c = 50, 8
	}
	if err := run(os.Stdout, *addr, *endpoint, *body, *n, *c, *wait, *maxP99, *ref); err != nil {
		fmt.Fprintf(os.Stderr, "iodload: %v\n", err)
		os.Exit(1)
	}
}

// defaultBodies are ready-made queries against iod's builtin corpus.
var defaultBodies = map[string]string{
	"predict":          `{"model":"madbench2"}`,
	"explore":          `{"model":"madbench2","base":"configA"}`,
	"compare-degraded": `{"model":"madbench2","config":"configA","scenario":"slow-disk"}`,
}

func run(out io.Writer, addr, endpoint, body string, n, c int, wait, maxP99 time.Duration, useRef bool) error {
	if body == "" {
		var ok bool
		body, ok = defaultBodies[endpoint]
		if !ok {
			return fmt.Errorf("unknown endpoint %q (predict, explore, compare-degraded)", endpoint)
		}
	}
	if n < 1 || c < 1 {
		return fmt.Errorf("need -n >= 1 and -c >= 1 (got %d, %d)", n, c)
	}
	if c > n {
		c = n
	}
	url := strings.TrimSuffix(addr, "/") + "/v1/" + endpoint
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: c}}

	if wait > 0 {
		if err := waitReady(client, strings.TrimSuffix(addr, "/")+"/readyz", wait); err != nil {
			return err
		}
	}

	// With -ref (the default), one sequential request pins the expected
	// status and body digest before the burst; with -ref=false the burst
	// goes out cold and the first response becomes the reference, so
	// concurrent identical requests race one server-side fingerprint.
	var refSum [sha256.Size]byte
	haveRef := false
	if useRef {
		refStatus, sum, refBody, err := once(client, url, body)
		if err != nil {
			return err
		}
		if refStatus != http.StatusOK {
			return fmt.Errorf("reference request: status %d: %s", refStatus, refBody)
		}
		if err := decodeReference(endpoint, refBody); err != nil {
			return err
		}
		refSum, haveRef = sum, true
	}

	type sample struct {
		status int
		sum    [sha256.Size]byte
	}
	type shard struct {
		lats    []time.Duration
		samples []sample
		body    []byte // first response body, for wire-type validation
		err     error
	}
	shards := make([]shard, c)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < c; w++ {
		quota := n / c
		if w < n%c {
			quota++
		}
		wg.Add(1)
		go func(w, quota int) {
			defer wg.Done()
			sh := &shards[w]
			for i := 0; i < quota; i++ {
				t := time.Now()
				status, sum, raw, err := once(client, url, body)
				if err != nil {
					sh.err = err
					return
				}
				sh.lats = append(sh.lats, time.Since(t))
				sh.samples = append(sh.samples, sample{status, sum})
				if sh.body == nil {
					sh.body = raw
				}
			}
		}(w, quota)
	}
	wg.Wait()
	wall := time.Since(t0)

	var lats []time.Duration
	mismatch := 0
	badStatus := map[int]int{}
	for i := range shards {
		if shards[i].err != nil {
			return shards[i].err
		}
		if !haveRef && len(shards[i].samples) > 0 {
			refSum, haveRef = shards[i].samples[0].sum, true
			if err := decodeReference(endpoint, shards[i].body); err != nil {
				return err
			}
		}
		lats = append(lats, shards[i].lats...)
		for _, sm := range shards[i].samples {
			switch {
			case sm.status != http.StatusOK:
				badStatus[sm.status]++
			case sm.sum != refSum:
				mismatch++
			}
		}
	}

	stats := report.Latencies(lats, wall)
	fmt.Fprintf(out, "%s x%d (c=%d): %s", url, n, c, stats.String())
	if len(badStatus) > 0 {
		return fmt.Errorf("non-200 statuses: %v", badStatus)
	}
	if mismatch > 0 {
		return fmt.Errorf("%d/%d responses diverged from the reference body — byte-identical invariant broken", mismatch, n)
	}
	fmt.Fprintf(out, "all %d responses byte-identical (sha256 %x...)\n", n, refSum[:6])
	if maxP99 > 0 && stats.P99 > maxP99 {
		return fmt.Errorf("p99 %v exceeds -maxp99 %v", stats.P99, maxP99)
	}
	return nil
}

// decodeReference checks the reference body against the shared wire types
// (the same structs the server marshals — cmd/iodload imports them, so
// client and server cannot drift).
func decodeReference(endpoint string, body []byte) error {
	var v any
	switch endpoint {
	case "predict":
		v = &serve.PredictResponse{}
	case "explore":
		v = &serve.ExploreResponse{}
	case "compare-degraded":
		v = &serve.CompareDegradedResponse{}
	default:
		return nil
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("reference response does not match the %s wire type: %w", endpoint, err)
	}
	return nil
}

// once fires one request and returns status, body digest, and the body.
func once(client *http.Client, url, body string) (int, [sha256.Size]byte, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, [sha256.Size]byte{}, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, [sha256.Size]byte{}, nil, err
	}
	return resp.StatusCode, sha256.Sum256(raw), raw, nil
}

// waitReady polls /readyz until 200, the deadline, or a non-503 failure.
func waitReady(client *http.Client, url string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server not ready after %v (%s)", wait, url)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
