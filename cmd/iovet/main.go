// Command iovet is the repo's invariant checker: a multichecker over
// the internal/analysis suite that mechanically enforces the
// simulator's determinism, virtual-time and telemetry-purity rules
// (DESIGN.md §10). CI and bench.sh run it over ./...; a non-empty
// report is a build failure.
//
// Usage:
//
//	iovet ./...                 # whole tree (the CI invocation)
//	iovet ./internal/des        # one package
//	iovet -only detwall ./...   # a subset of analyzers
//	iovet -list                 # describe the analyzers
//	iovet -v ./...              # also count //iovet:allow suppressions
//	iovet -json ./...           # findings as JSON Lines (CI problem matcher)
//
// Suppression: a finding may be silenced with a comment on its line or
// the line above —
//
//	//iovet:allow(<analyzer>[,<analyzer>]) <reason>
//
// The reason is mandatory and the analyzer names must exist; malformed
// allows are themselves diagnostics and cannot be suppressed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"iophases/internal/analysis/framework"
	"iophases/internal/analysis/iovet"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer subset to run (allow-comment validation still uses the full registry)")
	verbose := flag.Bool("v", false, "report suppression counts on stderr")
	jsonOut := flag.Bool("json", false, "emit findings as JSON Lines ({file,line,col,analyzer,message} per line)")
	flag.Parse()

	all := iovet.All()
	if *list {
		for _, a := range all {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-10s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "iovet: unknown analyzer %q (known: %s)\n",
					name, strings.Join(iovet.KnownNames(), ", "))
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	res, err := framework.Run(".", patterns, analyzers, iovet.KnownNames())
	if err != nil {
		fmt.Fprintf(os.Stderr, "iovet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "iovet: %d diagnostics, %d suppressed by //iovet:allow\n",
			len(res.Diagnostics), res.Suppressed)
	}
	if len(res.Diagnostics) > 0 {
		if *jsonOut {
			if err := framework.WriteJSON(os.Stdout, res); err != nil {
				fmt.Fprintf(os.Stderr, "iovet: %v\n", err)
				os.Exit(2)
			}
		} else {
			framework.Format(os.Stdout, res)
		}
		os.Exit(1)
	}
}
