package iophases

// One benchmark per table and figure of the paper (see DESIGN.md's
// per-experiment index), plus ablation benches for the design choices the
// simulator embodies. Benchmarks run scaled-down workloads so `go test
// -bench=.` completes quickly; cmd/experiments regenerates the full-scale
// tables. Key reproduced quantities are attached as custom metrics.

import (
	"fmt"
	"testing"

	"iophases/internal/apps/btio"
	"iophases/internal/apps/madbench"
	"iophases/internal/cluster"
	"iophases/internal/coexec"
	"iophases/internal/core"
	"iophases/internal/des"
	"iophases/internal/disksim"
	"iophases/internal/fastpath"
	"iophases/internal/ior"
	"iophases/internal/iozone"
	"iophases/internal/mpi"
	"iophases/internal/mpiio"
	"iophases/internal/pattern"
	"iophases/internal/phase"
	"iophases/internal/predict"
	"iophases/internal/runner"
	"iophases/internal/simcache"
	"iophases/internal/trace"
	"iophases/internal/units"
)

// benchBTIOSet traces a small BT-IO run once (shared across iterations of
// analysis-stage benchmarks).
func benchBTIOSet(b *testing.B, np int, class btio.Class) *trace.Set {
	b.Helper()
	params := btio.Default(class)
	res := runner.Run(cluster.ConfigA(), np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	return res.Set
}

func benchMadbenchSet(b *testing.B, cfg cluster.Spec, np int, rs int64) *trace.Set {
	b.Helper()
	params := madbench.Default()
	params.RS = rs
	res := runner.Run(cfg, np, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return res.Set
}

// BenchmarkFig2TraceExample regenerates the Figure 2 trace rows: a traced
// BT-IO run whose per-rank files show the 121-tick dump spacing.
func BenchmarkFig2TraceExample(b *testing.B) {
	var events int
	for i := 0; i < b.N; i++ {
		set := benchBTIOSet(b, 4, btio.ClassW)
		evs := set.DataEvents(0)
		events = len(evs)
		if evs[1].Tick-evs[0].Tick != 121 {
			b.Fatalf("dump spacing %d", evs[1].Tick-evs[0].Tick)
		}
	}
	b.ReportMetric(float64(events), "events/rank")
}

// BenchmarkFig3LAPExtraction measures LAP mining over a traced rank.
func BenchmarkFig3LAPExtraction(b *testing.B) {
	set := benchBTIOSet(b, 4, btio.ClassW)
	evs := set.DataEvents(0)
	b.ResetTimer()
	var laps []pattern.LAP
	for i := 0; i < b.N; i++ {
		laps = pattern.Extract(0, evs)
	}
	if len(laps) == 0 {
		b.Fatal("no LAPs")
	}
	b.ReportMetric(float64(len(laps)), "laps")
}

// BenchmarkFig4PhaseIdent measures cross-rank phase identification.
func BenchmarkFig4PhaseIdent(b *testing.B) {
	set := benchBTIOSet(b, 4, btio.ClassW)
	b.ResetTimer()
	var res *phase.Result
	for i := 0; i < b.N; i++ {
		res = phase.Identify(set)
	}
	want := btio.ClassW.Dumps() + 1
	if len(res.Phases) != want {
		b.Fatalf("phases %d, want %d", len(res.Phases), want)
	}
	b.ReportMetric(float64(len(res.Phases)), "phases")
}

// BenchmarkPhaseIdentClassD measures phase identification at class-D scale:
// 16 ranks, all 50 dumps, each dump scattered into 16 strided pieces via
// the SIMPLE subtype — tens of thousands of data events, the analysis-stage
// workload the parallel per-rank extraction fan-out exists for. The trace
// is built once; each iteration is one cold Identify over all ranks.
func BenchmarkPhaseIdentClassD(b *testing.B) {
	params := btio.Default(btio.ClassD)
	params.Subtype = btio.Simple
	params.PiecesPerRank = 16
	run := runner.Run(cluster.ConfigA(), 16, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
		return btio.Program(sys, params)
	}, runner.Options{Trace: true})
	set := run.Set
	events := 0
	for p := 0; p < set.NP; p++ {
		events += len(set.DataEvents(p))
	}
	b.ResetTimer()
	var res *phase.Result
	for i := 0; i < b.N; i++ {
		res = phase.Identify(set)
	}
	if len(res.Phases) == 0 {
		b.Fatal("no phases")
	}
	b.ReportMetric(float64(events), "events")
	b.ReportMetric(float64(len(res.Phases)), "phases")
}

// BenchmarkPhaseIdentWide measures Identify on a wide synthetic trace —
// 64 ranks × 1024 data events of a MADBench-like periodic mix — where
// per-rank LAP mining dominates and the sweep fan-out has real work to
// spread. Complements BenchmarkPhaseIdentClassD, whose trace is the real
// (but small) class-D event stream.
func BenchmarkPhaseIdentWide(b *testing.B) {
	const (
		np     = 64
		perOp  = int64(4) * units.MiB
		rounds = 256 // 4 ops per round -> 1024 events per rank
	)
	set := trace.NewSet("synthetic", "bench", np)
	set.AddFile(trace.FileMeta{ID: 0, Name: "/wide", AccessType: "shared",
		PointerSet: "explicit", Blocking: true})
	for p := 0; p < np; p++ {
		base := int64(p) * int64(rounds) * 4 * perOp
		tick := int64(0)
		tm := units.Duration(0)
		for rnd := int64(0); rnd < rounds; rnd++ {
			for k := int64(0); k < 4; k++ {
				op := trace.OpWrite
				if k%2 == 1 {
					op = trace.OpRead
				}
				tick++
				set.Record(trace.Event{Rank: p, File: 0, Op: op,
					Offset: base + (rnd*4+k)*perOp, Tick: tick, Size: perOp,
					Time: tm, Duration: 10 * units.Millisecond})
				tm += 20 * units.Millisecond
			}
			tick += 3 // inter-round gap
		}
	}
	b.ResetTimer()
	var res *phase.Result
	for i := 0; i < b.N; i++ {
		res = phase.Identify(set)
	}
	if len(res.Phases) == 0 {
		b.Fatal("no phases")
	}
	b.ReportMetric(float64(np*rounds*4), "events")
}

// BenchmarkStreamIdentSynth measures the bounded-memory streaming pipeline
// end to end: a generated synthetic source (8 ranks × 64k events) flows
// through the per-rank incremental miners and two-pass identification.
// Events are produced on the fly, so the measured footprint is the
// pipeline's own — the property the 256 MiB CI smoke enforces at 10M+
// events.
func BenchmarkStreamIdentSynth(b *testing.B) {
	src, err := trace.Synth(trace.SynthSpec{NP: 8, EventsPerRank: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * (64 << 10))
	b.ResetTimer()
	var res *phase.Result
	for i := 0; i < b.N; i++ {
		res, err = phase.IdentifyStream(src)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(res.Phases) == 0 {
		b.Fatal("no phases")
	}
	b.ReportMetric(float64(len(res.Phases)), "phases")
}

// BenchmarkStreamIdentVsInMemory pins streaming against the materialized
// path on the same input: same phases, different memory shape. The metric
// of interest is allocs/op staying flat as EventsPerRank grows.
func BenchmarkStreamIdentVsInMemory(b *testing.B) {
	src, err := trace.Synth(trace.SynthSpec{NP: 4, EventsPerRank: 16 << 10})
	if err != nil {
		b.Fatal(err)
	}
	set, err := trace.ReadSet(src)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("inmemory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if res := phase.Identify(set); len(res.Phases) == 0 {
				b.Fatal("no phases")
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := phase.IdentifyStream(src)
			if err != nil || len(res.Phases) == 0 {
				b.Fatalf("stream: %v", err)
			}
		}
	})
}

// BenchmarkFig5AbstractModel measures full model construction.
func BenchmarkFig5AbstractModel(b *testing.B) {
	set := benchBTIOSet(b, 4, btio.ClassW)
	b.ResetTimer()
	var m *core.Model
	for i := 0; i < b.N; i++ {
		m = core.Build(set)
	}
	if m.AccessMode != "strided" {
		b.Fatalf("mode %s", m.AccessMode)
	}
	b.ReportMetric(float64(len(m.AccessPoints())), "access-points")
}

// BenchmarkFig6IORModel extracts the I/O model of an IOR run: exactly one
// write phase and one read phase.
func BenchmarkFig6IORModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := ior.Run(cluster.ConfigA(), ior.Params{
			NP: 4, BlockSize: 16 * units.MiB, Transfer: 4 * units.MiB,
			Segments: 1, DoWrite: true, DoRead: true, TraceRun: true,
		})
		m := core.Build(res.Trace)
		if len(m.Phases) != 2 || m.Phases[0].Direction() != core.Write || m.Phases[1].Direction() != core.Read {
			b.Fatalf("IOR model %v", m.Phases)
		}
	}
}

// BenchmarkTable8MadbenchPhases regenerates the five-phase MADBench2 model
// with Table VIII's weights ratio 4:1:6:1:4.
func BenchmarkTable8MadbenchPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := benchMadbenchSet(b, cluster.ConfigA(), 16, 4*units.MiB)
		m := core.Build(set)
		if len(m.Phases) != 5 {
			b.Fatalf("phases %d", len(m.Phases))
		}
		if m.Phases[0].Weight != 4*m.Phases[1].Weight || m.Phases[2].Weight != 6*m.Phases[1].Weight {
			b.Fatal("weight ratios broken")
		}
	}
	b.ReportMetric(5, "phases")
}

// usageBench computes Eq. 5 for a configuration and reports the mean usage.
func usageBench(b *testing.B, cfg cluster.Spec) {
	var mean float64
	for i := 0; i < b.N; i++ {
		set := benchMadbenchSet(b, cfg, 8, 8*units.MiB)
		m := core.Build(set)
		pkW, pkR := predict.PeakBandwidth(cfg, units.GiB, 8*units.MiB)
		var sum float64
		for _, pm := range m.Phases {
			bwMD := units.BandwidthOf(pm.Weight, units.FromSeconds(pm.MeasuredSec))
			pk := pkW
			if pm.Direction() == core.Read {
				pk = pkR
			}
			sum += predict.Usage(bwMD, pk)
		}
		mean = sum / float64(len(m.Phases))
	}
	b.ReportMetric(mean, "usage-%")
}

// BenchmarkTable9UsageConfA regenerates Table IX's usage column.
func BenchmarkTable9UsageConfA(b *testing.B) { usageBench(b, cluster.ConfigA()) }

// BenchmarkTable10UsageConfB regenerates Table X's usage column.
func BenchmarkTable10UsageConfB(b *testing.B) { usageBench(b, cluster.ConfigB()) }

// BenchmarkFig8DeviceMonitor runs MADBench2 on configuration B with
// device-level monitoring and reports the samples collected.
func BenchmarkFig8DeviceMonitor(b *testing.B) {
	var samples int
	for i := 0; i < b.N; i++ {
		params := madbench.Default()
		params.RS = 8 * units.MiB
		res := runner.Run(cluster.ConfigB(), 8, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
			return madbench.Program(sys, params)
		}, runner.Options{Trace: true, MonitorInterval: units.Second, DrainAtEnd: true})
		samples = len(res.Monitor.Samples())
		if samples < 3 {
			b.Fatalf("samples %d", samples)
		}
	}
	b.ReportMetric(float64(samples), "samples")
}

// BenchmarkFig9BTIOModelC verifies model independence across
// configurations A and B.
func BenchmarkFig9BTIOModelC(b *testing.B) {
	params := btio.Default(btio.ClassW)
	for i := 0; i < b.N; i++ {
		run := func(spec cluster.Spec) *core.Model {
			res := runner.Run(spec, 4, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
				return btio.Program(sys, params)
			}, runner.Options{Trace: true})
			return core.Build(res.Set)
		}
		if !run(cluster.ConfigA()).SameShape(run(cluster.ConfigB())) {
			b.Fatal("model not subsystem-independent")
		}
	}
}

// BenchmarkTable11BTIOPhases checks the phase-family structure and offset
// functions of Table XI.
func BenchmarkTable11BTIOPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		set := benchBTIOSet(b, 4, btio.ClassW)
		m := core.Build(set)
		dumps := btio.ClassW.Dumps()
		rs := btio.ClassW.RS(4)
		if len(m.Phases) != dumps+1 {
			b.Fatalf("phases %d", len(m.Phases))
		}
		first := m.Phases[0]
		if first.OffsetA != rs || first.OffsetB != 4*rs || !first.OffsetOK {
			b.Fatalf("offset fn %+v", first)
		}
	}
}

// shortClassD is class D with fewer dumps: full 2.65 GB dump weight (above
// every server cache), bench-friendly runtime.
func shortClassD() btio.Class {
	c := btio.ClassD
	c.TimeSteps = 25
	return c
}

// BenchmarkTable12TimeEstimation estimates class-D BT-IO on configC vs
// Finisterrae and reports the win factor.
func BenchmarkTable12TimeEstimation(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		params := btio.Default(shortClassD())
		res := runner.Run(cluster.ConfigC(), 16, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
			return btio.Program(sys, params)
		}, runner.Options{Trace: true})
		m := core.Build(res.Set)
		best, choices, err := predict.SelectConfig(m, []cluster.Spec{cluster.ConfigC(), cluster.Finisterrae()})
		if err != nil {
			b.Fatal(err)
		}
		if choices[best].Config != "finisterrae" {
			b.Fatalf("selected %s", choices[best].Config)
		}
		factor = choices[0].Total.Seconds() / choices[1].Total.Seconds()
	}
	b.ReportMetric(factor, "finisterrae-win-x")
}

// errorBench measures the estimation error of Tables XIII/XIV.
func errorBench(b *testing.B, spec cluster.Spec, np int) {
	var worst float64
	for i := 0; i < b.N; i++ {
		params := btio.Default(shortClassD())
		res := runner.Run(spec, np, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
			return btio.Program(sys, params)
		}, runner.Options{Trace: true})
		m := core.Build(res.Set)
		est, err := predict.EstimateTime(m, spec)
		if err != nil {
			b.Fatal(err)
		}
		groups, err := predict.CompareByFamily(est, m)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, g := range groups {
			if g.RelErr > worst {
				worst = g.RelErr
			}
		}
		if worst > 15 {
			b.Fatalf("error %.1f%% exceeds the paper's bound", worst)
		}
	}
	b.ReportMetric(worst, "worst-err-%")
}

// BenchmarkTable13ErrorConfC regenerates Table XIII's error column.
func BenchmarkTable13ErrorConfC(b *testing.B) { errorBench(b, cluster.ConfigC(), 16) }

// BenchmarkTable14ErrorFinisterrae regenerates Table XIV's error column.
func BenchmarkTable14ErrorFinisterrae(b *testing.B) { errorBench(b, cluster.Finisterrae(), 16) }

// BenchmarkPhase3MixedError measures the characterization error of
// MADBench2's phases when replayed by single-direction IOR runs (§V).
func BenchmarkPhase3MixedError(b *testing.B) {
	var maxErr float64
	for i := 0; i < b.N; i++ {
		set := benchMadbenchSet(b, cluster.ConfigA(), 16, 32*units.MiB)
		m := core.Build(set)
		est, err := predict.EstimateTime(m, cluster.ConfigA())
		if err != nil {
			b.Fatal(err)
		}
		groups, err := predict.CompareByFamily(est, m)
		if err != nil {
			b.Fatal(err)
		}
		maxErr = 0
		for _, g := range groups {
			if g.RelErr > maxErr {
				maxErr = g.RelErr
			}
		}
	}
	b.ReportMetric(maxErr, "max-phase-err-%")
}

// BenchmarkIORSweep runs the Table III characterization sweep.
func BenchmarkIORSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, t := range []int64{units.MiB, 8 * units.MiB} {
			res := ior.Run(cluster.ConfigA(), ior.Params{
				NP: 4, BlockSize: 16 * units.MiB, Transfer: t,
				Segments: 1, DoWrite: true, DoRead: true, Fsync: true,
			})
			if res.WriteBW <= 0 {
				b.Fatal("sweep failed")
			}
		}
	}
}

// BenchmarkIOzoneSweep runs the Table IV device sweep.
func BenchmarkIOzoneSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := cluster.Build(cluster.ConfigA())
		results := iozone.Sweep(c.Eng, c.IODevice(0), 256*units.MiB,
			[]int64{256 * units.KiB, 4 * units.MiB})
		if len(results) != 6 {
			b.Fatalf("sweep %d", len(results))
		}
	}
}

// BenchmarkAblationCollective compares BT-IO FULL (collective, two-phase
// I/O) against SIMPLE (independent) on a strided decomposition — the
// design choice collective buffering exists for.
func BenchmarkAblationCollective(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		run := func(subtype string) units.Duration {
			params := btio.Default(btio.ClassA)
			params.Subtype = subtype
			params.PiecesPerRank = 16 // nested strided pieces
			// Configuration B's cacheless JBOD disks pay a seek per
			// scattered piece; two-phase I/O repacks them into
			// streams.
			res := runner.Run(cluster.ConfigB(), 4, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
				return btio.Program(sys, params)
			}, runner.Options{Trace: true, DrainAtEnd: true})
			return res.Elapsed
		}
		simple := run(btio.Simple)
		full := run(btio.Full)
		speedup = simple.Seconds() / full.Seconds()
	}
	if speedup < 1.2 {
		b.Fatalf("collective buffering speedup %.2f, expected > 1.2 on strided pieces", speedup)
	}
	b.ReportMetric(speedup, "collective-speedup-x")
}

// raidStreamTime measures the virtual time of a misaligned sub-stripe
// write stream against an array of the given level.
func raidStreamTime(b *testing.B, level disksim.RAIDLevel, req int64) units.Duration {
	b.Helper()
	eng := des.NewEngine()
	var members []*disksim.Disk
	for d := 0; d < 5; d++ {
		members = append(members, disksim.NewDisk(eng, fmt.Sprintf("d%d", d),
			disksim.SATA7200(units.TiB)))
	}
	a := disksim.NewArray(eng, "a", level, members, 256*units.KiB)
	eng.Spawn("w", func(p *des.Proc) {
		// Offset by half a unit so every request straddles stripes.
		for i := int64(0); i < 256; i++ {
			a.Write(p, 128*units.KiB+i*req, req)
		}
	})
	eng.Run()
	return eng.Now()
}

// BenchmarkAblationRAID compares RAID5 against RAID0 under the same
// misaligned write load (the read-modify-write parity cost).
func BenchmarkAblationRAID(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		r5 := raidStreamTime(b, disksim.RAID5, 128*units.KiB) // sub-stripe: pays RMW
		r0 := raidStreamTime(b, disksim.RAID0, 128*units.KiB)
		penalty = r5.Seconds() / r0.Seconds()
	}
	if penalty < 1.2 {
		b.Fatalf("RAID5 RMW penalty %.2f, expected > 1.2 for sub-stripe writes", penalty)
	}
	b.ReportMetric(penalty, "raid5-rmw-penalty-x")
}

// BenchmarkAblationTickSplit quantifies the tick-gap phase-splitting rule:
// with it, BT-IO's writes become per-round phases; without it (naive RLE
// only), they would collapse into one.
func BenchmarkAblationTickSplit(b *testing.B) {
	set := benchBTIOSet(b, 4, btio.ClassW)
	b.ResetTimer()
	var split, naive int
	for i := 0; i < b.N; i++ {
		res := phase.Identify(set)
		split = len(res.Phases)
		naive = len(res.Families())
	}
	if split <= naive {
		b.Fatalf("splitting had no effect: %d vs %d", split, naive)
	}
	b.ReportMetric(float64(split), "phases-with-split")
	b.ReportMetric(float64(naive), "phases-naive")
}

// BenchmarkAblationDegradedRAID measures the read penalty of a RAID5
// array running with a failed member (reconstruction reads).
func BenchmarkAblationDegradedRAID(b *testing.B) {
	read := func(degrade bool) units.Duration {
		eng := des.NewEngine()
		var members []*disksim.Disk
		for i := 0; i < 5; i++ {
			members = append(members, disksim.NewDisk(eng, fmt.Sprintf("d%d", i),
				disksim.SATA7200(units.TiB)))
		}
		a := disksim.NewArray(eng, "r5", disksim.RAID5, members, 256*units.KiB)
		if degrade {
			a.Fail(1)
		}
		eng.Spawn("r", func(p *des.Proc) {
			for i := int64(0); i < 64; i++ {
				a.Read(p, i*4*units.MiB, 4*units.MiB)
			}
		})
		eng.Run()
		return eng.Now()
	}
	var penalty float64
	for i := 0; i < b.N; i++ {
		penalty = read(true).Seconds() / read(false).Seconds()
	}
	if penalty <= 1 {
		b.Fatalf("degraded penalty %.2f", penalty)
	}
	b.ReportMetric(penalty, "degraded-read-penalty-x")
}

// BenchmarkRescalePrediction validates model rescaling: the 4p model
// rescaled to 16p must estimate within a few percent of the model traced
// at 16p.
func BenchmarkRescalePrediction(b *testing.B) {
	var err float64
	for i := 0; i < b.N; i++ {
		params := btio.Default(btio.ClassW)
		trace4 := runner.Run(cluster.ConfigA(), 4, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
			return btio.Program(sys, params)
		}, runner.Options{Trace: true})
		m16, rerr := core.Build(trace4.Set).Rescale(16)
		if rerr != nil {
			b.Fatal(rerr)
		}
		actual := runner.Run(cluster.ConfigA(), 16, "btio", func(sys *mpiio.System) func(*mpi.Rank) {
			return btio.Program(sys, params)
		}, runner.Options{Trace: true})
		estScaled, serr := predict.EstimateTime(m16, cluster.ConfigA())
		if serr != nil {
			b.Fatal(serr)
		}
		estActual, aerr := predict.EstimateTime(core.Build(actual.Set), cluster.ConfigA())
		if aerr != nil {
			b.Fatal(aerr)
		}
		err = predict.RelativeError(estScaled.TotalCH.Seconds(), estActual.TotalCH.Seconds())
		if err > 10 {
			b.Fatalf("rescaled prediction off by %.1f%%", err)
		}
	}
	b.ReportMetric(err, "rescale-err-%")
}

// BenchmarkAblationDataSieving compares independent strided reads with and
// without ROMIO-style data sieving in its favourable regime (tiny pieces,
// request latency dominated).
func BenchmarkAblationDataSieving(b *testing.B) {
	run := func(enable string) units.Duration {
		c := cluster.Build(cluster.ConfigA())
		w := mpi.NewWorld(c.Eng, c.Fabric, []string{c.NodeOfRank(0, 1)})
		sys := mpiio.NewSystem(c.FS, w)
		var took units.Duration
		w.Run(func(r *mpi.Rank) {
			f := sys.Open(r, "/sieve", mpiio.Shared)
			f.SetView(r, 0, 1, mpiio.Vector{Block: 4 * units.KiB, Stride: 8 * units.KiB})
			f.SetHint("romio_ds_read", enable)
			start := r.Now()
			f.ReadAt(r, 0, 2*units.MiB)
			took = r.Now() - start
			f.Close(r)
		})
		return took
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		speedup = run("disable").Seconds() / run("enable").Seconds()
	}
	if speedup <= 1 {
		b.Fatalf("sieving speedup %.2f", speedup)
	}
	b.ReportMetric(speedup, "sieving-speedup-x")
}

// BenchmarkAblationStripe sweeps the Lustre file stripe count for a
// shared-file collective write — the knob behind Finisterrae's shared-file
// behaviour.
func BenchmarkAblationStripe(b *testing.B) {
	var best float64
	var bestSC int
	for i := 0; i < b.N; i++ {
		for _, sc := range []int{1, 4, 18} {
			spec := cluster.Finisterrae()
			spec.Storage.FileStripeCount = sc
			res := ior.Run(spec, ior.Params{
				NP: 16, BlockSize: 64 * units.MiB, Transfer: 8 * units.MiB,
				Segments: 1, DoWrite: true, Collective: true, Fsync: true,
			})
			if bw := res.WriteBW.MBpsValue(); bw > best {
				best, bestSC = bw, sc
			}
		}
	}
	if bestSC == 1 {
		b.Fatal("wider striping should beat stripe_count=1 for a shared file")
	}
	b.ReportMetric(best, "best-MB/s")
	b.ReportMetric(float64(bestSC), "best-stripe-count")
}

// BenchmarkAblationPlacement compares block vs scatter rank placement for
// NIC-bound writers on a fully striped Lustre (§IV-A's process-placement
// remark).
func BenchmarkAblationPlacement(b *testing.B) {
	prog := func(sys *mpiio.System) func(r *mpi.Rank) {
		return func(r *mpi.Rank) {
			f := sys.Open(r, "/p", mpiio.Shared)
			f.WriteAt(r, int64(r.ID())*512*units.MiB, 512*units.MiB)
			f.Close(r)
		}
	}
	spec := cluster.Finisterrae()
	spec.Storage.FileStripeCount = 0
	var speedup float64
	for i := 0; i < b.N; i++ {
		block := runner.Run(spec, 4, "p", prog, runner.Options{Placement: cluster.PlaceBlock})
		scatter := runner.Run(spec, 4, "p", prog, runner.Options{Placement: cluster.PlaceScatter})
		speedup = block.Elapsed.Seconds() / scatter.Elapsed.Seconds()
	}
	if speedup <= 1 {
		b.Fatalf("scatter speedup %.2f", speedup)
	}
	b.ReportMetric(speedup, "scatter-speedup-x")
}

// BenchmarkCoexecPair measures a two-application co-execution: both jobs'
// phase schedules replayed inside one engine on one shared fabric +
// filesystem (the multi-application contention tier). Models are built
// once; each iteration is one full shared-cluster simulation, bypassing
// the replay cache so the simulation itself is what's priced.
func BenchmarkCoexecPair(b *testing.B) {
	a := core.Build(benchMadbenchSet(b, cluster.ConfigA(), 4, units.MiB))
	spec := coexec.Spec{Config: cluster.ConfigA(), Apps: []coexec.App{
		{Name: "a", Model: a},
		{Name: "b", Model: a, OffsetSec: 1},
	}}
	b.ResetTimer()
	var res *coexec.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = coexec.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	var wr int64
	for _, ar := range res.Apps {
		wr += ar.Acct.BytesWritten
	}
	if wr != res.FSWritten {
		b.Fatalf("attribution leak: %d vs %d", wr, res.FSWritten)
	}
	b.ReportMetric(res.TotalTimeIO.Seconds(), "total-timeio-s")
}

// benchNP1Model traces MADBench2 at a single rank: five non-collective
// phases, every one admissible to the analytic fast path. This is the
// contention-free workload class the raw-speed tier exists for.
func benchNP1Model(b *testing.B) *core.Model {
	b.Helper()
	params := madbench.Default()
	params.RS = units.MiB
	res := runner.Run(cluster.ConfigA(), 1, "madbench2", func(sys *mpiio.System) func(*mpi.Rank) {
		return madbench.Program(sys, params)
	}, runner.Options{Trace: true})
	return core.Build(res.Set)
}

// contentionFreeVariants is the subset of the standard what-if sweep the
// analytic tier admits: network generations and device organizations on a
// single storage target (§I's "RAID or single disks?" axis). The striped
// multi-server variants are excluded — striping is cross-server contention
// by construction, so those always take the DES and would only measure it.
func contentionFreeVariants(base cluster.Spec) []predict.Variant {
	var out []predict.Variant
	for _, v := range predict.StandardVariants(base) {
		if v.Spec.Storage.IONodes == 1 || v.Spec.Storage.FileStripeCount == 1 {
			out = append(out, v)
		}
	}
	return out
}

// fastPathExploreBench runs a contention-free what-if sweep over the
// single-rank model with the given fast-path mode. The simulation cache is
// reset every iteration so the benchmark prices simulations, not
// memoization — the pair (DES vs FastPath) isolates the analytic tier's
// raw speedup on Explore-style workloads.
func fastPathExploreBench(b *testing.B, mode fastpath.Mode) {
	m := benchNP1Model(b)
	variants := contentionFreeVariants(cluster.ConfigA())
	opts := predict.EstimateOptions{FastPath: mode}
	hits0, _ := fastpath.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simcache.Reset()
		if _, err := predict.ExploreOpts(m, variants, opts); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	hits, _ := fastpath.Stats()
	b.ReportMetric(float64(hits-hits0)/float64(b.N), "fp-hits/op")
}

// BenchmarkExploreNP1DES is the what-if sweep priced entirely by the
// discrete-event simulator (fast path off) — the pre-fast-path baseline.
func BenchmarkExploreNP1DES(b *testing.B) { fastPathExploreBench(b, fastpath.ModeOff) }

// BenchmarkExploreNP1FastPath is the same sweep with contention-free
// replays priced analytically. ns/op here versus BenchmarkExploreNP1DES is
// the raw-speed tier's win on its target workload class.
func BenchmarkExploreNP1FastPath(b *testing.B) { fastPathExploreBench(b, fastpath.ModeOn) }

// charzNP1Cases is a Table III-style single-rank characterization slice:
// transfer sizes swept at a fixed block size, write+read with fsync.
func charzNP1Cases() []ior.Params {
	sizes := []int64{64 * units.KiB, 256 * units.KiB, units.MiB, 4 * units.MiB}
	out := make([]ior.Params, 0, len(sizes))
	for _, ts := range sizes {
		out = append(out, ior.Params{
			NP: 1, BlockSize: 8 * units.MiB, Transfer: ts,
			Segments: 1, DoWrite: true, DoRead: true, Fsync: true,
		})
	}
	return out
}

// BenchmarkIORCharzNP1DES prices the single-rank characterization slice
// with the full simulator: cluster build, event loop, device clocks.
func BenchmarkIORCharzNP1DES(b *testing.B) {
	cases := charzNP1Cases()
	for i := 0; i < b.N; i++ {
		for _, p := range cases {
			ior.Run(cluster.ConfigA(), p)
		}
	}
}

// BenchmarkIORCharzNP1FastPath prices the same slice in closed form. Every
// case must be served analytically — a bailout would silently turn this
// into a DES benchmark.
func BenchmarkIORCharzNP1FastPath(b *testing.B) {
	cases := charzNP1Cases()
	spec := cluster.ConfigA()
	for i := 0; i < b.N; i++ {
		for _, p := range cases {
			if _, ok := fastpath.RunIOR(spec, p); !ok {
				b.Fatalf("fast path bailed on %+v", p)
			}
		}
	}
}
