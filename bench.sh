#!/bin/sh
# bench.sh — run the benchmark suite and emit a machine-readable perf
# snapshot (BENCH_<n>.json), so every PR's performance trajectory is
# tracked in-repo and diffable.
#
# Usage:
#   ./bench.sh                # writes BENCH_<next>.json in the repo root
#   ./bench.sh out.json       # explicit output path
#   BENCHTIME=5x ./bench.sh   # heavier sampling for the paper-level benches
#
# Two sampling tiers: the des engine microbenchmarks run many iterations
# (their per-op cost is microseconds and allocs/op is the tracked metric);
# the paper-level benchmarks replay whole simulations per op, so one
# iteration is already a meaningful sample.
set -e
cd "$(dirname "$0")"

# The CI gate compares fresh numbers against the newest committed
# snapshot; print which one that is so a local run and the gate are
# reading from the same baseline.
base=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
if [ -n "$base" ]; then
    echo "gate baseline: $base" >&2
fi

out=$1
if [ -z "$out" ]; then
    n=1
    while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
    out="BENCH_${n}.json"
elif [ -e "$out" ]; then
    # Committed snapshots are append-only history: overwriting one would
    # silently rewrite the perf trajectory the CI gate compares against.
    echo "bench.sh: refusing to overwrite existing snapshot $out" >&2
    echo "bench.sh: pass a new path, or no argument to auto-number BENCH_<n>.json" >&2
    exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Never snapshot perf from a tree that violates the determinism /
# telemetry-purity invariants: a BENCH_*.json taken from such a tree
# could bake in numbers no clean tree reproduces.
echo "== invariant check (cmd/iovet)" >&2
go run ./cmd/iovet ./...

echo "== engine microbenchmarks (internal/des)" >&2
go test -run='^$' -bench=. -benchmem ./internal/des/ >>"$tmp"

echo "== streaming-pipeline microbenchmarks (internal/trace, internal/pattern)" >&2
go test -run='^$' -bench=. -benchmem ./internal/trace/ ./internal/pattern/ >>"$tmp"

echo "== paper-level benchmarks (root)" >&2
go test -run='^$' -bench=. -benchmem -benchtime="${BENCHTIME:-1x}" . >>"$tmp"

# The analysis driver execs `go list -export -deps` per op, so one
# iteration is the meaningful sample; the benchmark itself asserts the
# single-load invariant (exactly one go list per driver run).
echo "== analysis-driver benchmarks (internal/analysis/framework)" >&2
go test -run='^$' -bench=BenchmarkDriverSingleLoad -benchmem -benchtime=1x \
    ./internal/analysis/framework/ >>"$tmp"

go run ./cmd/benchjson <"$tmp" >"$out"
echo "wrote $out" >&2
