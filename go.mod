module iophases

go 1.22
