// MADBench2 walk-through: reproduces the paper's §IV-A experiment — extract
// the five I/O phases of the cosmology kernel (Table VIII), measure each
// phase's bandwidth on configurations A and B, characterize the device peak
// with IOzone, and compute the system usage of Eq. 5 (Tables IX and X).
package main

import (
	"fmt"

	"iophases"
)

const (
	gib = int64(1) << 30
	mib = int64(1) << 20
)

func main() {
	params := iophases.DefaultMADBench() // 8 bins, 32 MiB requests (8KPIX / 16p)

	for _, cfg := range []iophases.Config{iophases.ConfigA(), iophases.ConfigB()} {
		fmt.Printf("==== %s: %s ====\n\n", cfg.Name, cfg.Description)

		run := iophases.TraceMADBench2(cfg, 16, params, iophases.RunOptions{})
		model := iophases.Extract(run.Set)
		if len(model.Phases) != 5 {
			panic("expected the five phases of Table VIII")
		}

		// Device-level peak via the IOzone replica (Eq. 3–4). The file
		// size rule FZ >= 2x RAM defeats the server caches.
		pkWrite, pkRead := iophases.PeakBandwidth(cfg, 2*gib, params.RS)
		fmt.Printf("BW_PK: write %.0f MB/s, read %.0f MB/s\n\n",
			pkWrite.MBpsValue(), pkRead.MBpsValue())

		fmt.Printf("%-6s %-10s %-8s %-10s %-10s %s\n",
			"Phase", "#Oper.", "weight", "BW_MD", "BW_PK", "SystemUsage")
		for _, ph := range model.Phases {
			measured := iophases.MeasuredBandwidth(ph)
			peak := pkWrite
			switch ph.Direction() {
			case "R":
				peak = pkRead
			case "W-R":
				peak = (pkWrite + pkRead) / 2
			}
			fmt.Printf("%-6d %-10s %-8s %7.1f MB/s %6.0f MB/s %6.1f%%\n",
				ph.ID,
				fmt.Sprintf("%d %s", len(ph.Ops)*ph.Rep*ph.NP, ph.Direction()),
				fmtBytes(ph.Weight),
				measured.MBpsValue(), peak.MBpsValue(),
				iophases.Usage(measured, peak))
		}
		fmt.Println()
	}

	fmt.Println("Like the paper's Tables IX–X, the application uses roughly a third of")
	fmt.Println("the devices' capacity: the network path, not the disks, bounds it.")
}

func fmtBytes(n int64) string {
	switch {
	case n%gib == 0:
		return fmt.Sprintf("%dGB", n/gib)
	case n%mib == 0:
		return fmt.Sprintf("%dMB", n/mib)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
