// BT-IO configuration selection: reproduces §IV-B — model NAS BT-IO once,
// estimate its I/O time on configuration C and on Finisterrae with IOR
// phase replays (Table XII), pick the faster subsystem, and then validate
// the estimates against measured runs (Tables XIII–XIV style).
//
// Pass -full to run the paper's full class D (50 dumps, ~133 GB per
// direction at 64 processes); the default runs a shortened class D that
// keeps every phase weight above the server caches.
package main

import (
	"flag"
	"fmt"
	"os"

	"iophases"
)

// check aborts on estimation errors — the example constructs all of its
// own inputs, so any error is unexpected.
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "btio-selection:", err)
		os.Exit(1)
	}
}

func main() {
	full := flag.Bool("full", false, "run the full class D (slower)")
	np := flag.Int("np", 64, "process count (must be a square)")
	flag.Parse()

	class := iophases.ClassD
	if !*full {
		class.TimeSteps = 50 // 10 dumps; same 2.65 GB dump weight
	}
	params := iophases.DefaultBTIO(class)

	// Characterize once, on configuration C.
	fmt.Printf("tracing BT-IO class %s on configC with %d processes...\n", class.Name, *np)
	run := iophases.TraceBTIO(iophases.ConfigC(), *np, params, iophases.RunOptions{})
	model := iophases.Extract(run.Set)
	dumps := class.Dumps()
	fmt.Printf("model: %d write phases + 1 read phase (rep %d), collective, strided, shared file\n\n",
		dumps, dumps)

	// Estimate on both targets (Table XII).
	candidates := []iophases.Config{iophases.ConfigC(), iophases.Finisterrae()}
	best, choices, err := iophases.SelectConfig(model, candidates)
	check(err)
	fmt.Printf("%-14s %-14s %s\n", "Phase", "on configC", "on Finisterrae")
	groupsC, err := iophases.CompareByFamily(choices[0].Est, model)
	check(err)
	groupsF, err := iophases.CompareByFamily(choices[1].Est, model)
	check(err)
	for i := range groupsC {
		fmt.Printf("%-14s %10.2f s %12.2f s\n",
			groupsC[i].Label, groupsC[i].TimeCH.Seconds(), groupsF[i].TimeCH.Seconds())
	}
	fmt.Printf("%-14s %10.2f s %12.2f s\n", "Total",
		choices[0].Total.Seconds(), choices[1].Total.Seconds())
	fmt.Printf("\n=> select %s (the paper also selects Finisterrae)\n\n", choices[best].Config)

	// Validation: run the application on each target and compare
	// estimated vs measured per phase group (Tables XIII–XIV).
	for i, cfg := range candidates {
		measured := iophases.Extract(iophases.TraceBTIO(cfg, *np, params, iophases.RunOptions{}).Set)
		fmt.Printf("validation on %s:\n", cfg.Name)
		groups, err := iophases.CompareByFamily(choices[i].Est, measured)
		check(err)
		for _, g := range groups {
			fmt.Printf("  %-12s CH %9.2f s   MD %9.2f s   error %.0f%%\n",
				g.Label, g.TimeCH.Seconds(), g.TimeMD.Seconds(), g.RelErr)
		}
	}
	fmt.Println("\nerrors stay within the paper's <10% bound at class D scale")
}
