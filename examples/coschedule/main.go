// Phase-aware co-scheduling: §IV-A remarks that the phase view is useful
// "for the planning the parallel applications taking into account when the
// I/O phases are done". Two MADBench2 jobs share one cluster; the planner
// reads both I/O models, finds the start offset that steers job B's phases
// into job A's compute gaps, and the concurrent simulation validates the
// plan.
package main

import (
	"fmt"

	"iophases"
)

func main() {
	const np = 8
	mk := func(file string) iophases.Program {
		params := iophases.DefaultMADBench()
		params.RS = 8 << 20
		params.FileName = file
		return func(sys *iophases.System) func(r *iophases.Rank) {
			// MADBench2's S/W/C skeleton through the public surface.
			return func(r *iophases.Rank) {
				f := sys.Open(r, file, iophases.SharedFile)
				base := int64(r.ID()) * 8 * params.RS
				rw := func(off int64, write bool) {
					f.Seek(r, off)
					if write {
						f.Write(r, params.RS)
					} else {
						f.Read(r, params.RS)
					}
				}
				for b := int64(0); b < 8; b++ { // S
					r.Compute(250e6)
					rw(base+b*params.RS, true)
				}
				r.Barrier()
				for b := int64(0); b < 8; b++ { // C
					r.Compute(250e6)
					rw(base+b*params.RS, false)
				}
				f.Close(r)
			}
		}
	}

	// Characterize both jobs (here: the same kernel on two files).
	trace := func(file string) *iophases.Model {
		run := iophases.Trace(iophases.ConfigA(), np, "job-"+file, mk(file),
			iophases.RunOptions{Trace: true})
		return iophases.Extract(run.Set)
	}
	a, b := trace("/a.dat"), trace("/b.dat")

	// Plan B's start from the models alone.
	horizon := 0.0
	for _, ph := range a.Phases {
		if end := ph.StartSec + ph.MeasuredSec; end > horizon {
			horizon = end
		}
	}
	best, naive := iophases.BestStartOffset(a, b, horizon, 0.25)
	fmt.Printf("contention at co-start: %.0f bytes; planned offset +%.2fs: %.0f bytes\n\n",
		naive.Score, best.OffsetSec, best.Score)

	// Validate by co-executing both models on one simulated cluster: one
	// engine, one shared fabric + filesystem, bandwidth contended at the
	// same link and disk queues a single job would use. The result also
	// attributes every byte of shared-filesystem traffic to the job that
	// moved it.
	run := func(offset float64) *iophases.CoexecResult {
		res, err := iophases.RunCoexec(iophases.CoexecSpec{
			Config: iophases.ConfigA(),
			Apps: []iophases.CoexecApp{
				{Name: "jobA", Model: a},
				{Name: "jobB", Model: b, OffsetSec: offset},
			},
		})
		if err != nil {
			panic(err)
		}
		return res
	}
	for _, plan := range []struct {
		name   string
		offset float64
	}{{"naive co-start", 0}, {fmt.Sprintf("planned +%.2fs", best.OffsetSec), best.OffsetSec}} {
		res := run(plan.offset)
		fmt.Printf("%-16s  total Time_io %7.2fs   makespan %7.2fs\n",
			plan.name, res.TotalTimeIO.Seconds(), res.Makespan.Seconds())
	}

	// Attribution under the planned schedule: per-app bytes sum exactly
	// to the shared filesystem's totals (DESIGN.md §14).
	res := run(best.OffsetSec)
	fmt.Println()
	for _, app := range res.Apps {
		fmt.Printf("%s moved %d MiB through the shared filesystem\n",
			app.Name, (app.Acct.BytesWritten+app.Acct.BytesRead)>>20)
	}
}
