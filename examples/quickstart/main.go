// Quickstart: characterize an application once, then predict its I/O time
// on other I/O subsystems without running it there — the paper's complete
// workflow in ~40 lines.
package main

import (
	"fmt"
	"os"

	"iophases"
)

func main() {
	// 1. Characterization: run MADBench2 once, traced, on configuration
	//    A (NFS over 1 GbE with a RAID5 NAS).
	params := iophases.DefaultMADBench()
	run := iophases.TraceMADBench2(iophases.ConfigA(), 16, params, iophases.RunOptions{})
	fmt.Printf("traced %s on %s: %v of virtual time\n\n",
		run.Set.App, run.Set.Config, run.Elapsed)

	// 2. Extract the I/O abstract model: phases, weights, offset
	//    functions, metadata. This model is subsystem-independent.
	model := iophases.Extract(run.Set)
	fmt.Println(model)

	// 3. Analysis: replay only the phases with IOR on each candidate
	//    subsystem and estimate the application's I/O time there.
	candidates := []iophases.Config{iophases.ConfigA(), iophases.ConfigB()}
	best, choices, err := iophases.SelectConfig(model, candidates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	for i, ch := range choices {
		marker := "  "
		if i == best {
			marker = "=>"
		}
		fmt.Printf("%s %-10s estimated Time_io = %8.2f s\n",
			marker, ch.Config, ch.Total.Seconds())
	}
	fmt.Printf("\nthe model predicts %s gives the least I/O time for this access pattern\n",
		choices[best].Config)
}
