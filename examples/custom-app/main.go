// Custom application modeling: the methodology is not limited to the
// paper's two kernels. This example writes a small iterative stencil
// solver with periodic checkpoints and a restart read — entirely through
// the public API — traces it, extracts its I/O model, and asks which of
// the four configurations serves it best.
//
// The checkpoint pattern (every rank writes its contiguous slab of a
// shared file every K iterations, then one restart pass reads everything
// back) is the most common I/O shape in practice; its extracted model has
// the same family structure as BT-IO's.
package main

import (
	"fmt"
	"os"

	"iophases"
)

const (
	mib        = int64(1) << 20
	slabSize   = 24 * mib // bytes per rank per checkpoint
	iterations = 30
	checkEvery = 5
	halo       = 512 * 1024 // halo exchange bytes per step
)

// stencilApp returns the per-rank program: compute + halo exchanges, a
// checkpoint every checkEvery iterations, and a final restart read.
func stencilApp(sys *iophases.System) func(r *iophases.Rank) {
	return func(r *iophases.Rank) {
		np := int64(r.Size())
		f := sys.Open(r, "/stencil.ckpt", iophases.SharedFile)
		ckpt := 0
		for it := 1; it <= iterations; it++ {
			r.Compute(20 * 1e6) // 20 ms of stencil sweeps
			r.Exchange(halo)    // halo exchange with the neighbour
			r.Exchange(halo)
			if it%checkEvery == 0 {
				// Checkpoint c: rank-contiguous slabs, appended
				// per checkpoint like BT-IO's dumps.
				off := int64(ckpt)*np*slabSize + int64(r.ID())*slabSize
				f.WriteAt(r, off, slabSize)
				ckpt++
			}
		}
		r.Barrier()
		// Restart: read the last checkpoint back.
		last := int64(ckpt-1) * np * slabSize
		f.ReadAt(r, last+int64(r.ID())*slabSize, slabSize)
		f.Close(r)
	}
}

func main() {
	const np = 8
	run := iophases.Trace(iophases.ConfigA(), np, "stencil-ckpt",
		stencilApp, iophases.RunOptions{Trace: true})
	model := iophases.Extract(run.Set)

	fmt.Println("extracted model of the custom checkpointing stencil:")
	fmt.Println(model)

	// The checkpoints form a phase family (like BT-IO's write rounds);
	// the restart read is its own phase.
	fams := model.Families()
	fmt.Printf("phase families: %d (checkpoint rounds + restart read)\n\n", len(fams))

	best, choices, err := iophases.SelectConfig(model, iophases.Configs())
	if err != nil {
		fmt.Fprintln(os.Stderr, "custom-app:", err)
		os.Exit(1)
	}
	fmt.Printf("%-14s %s\n", "configuration", "estimated Time_io")
	for i, ch := range choices {
		marker := "  "
		if i == best {
			marker = "=>"
		}
		fmt.Printf("%s %-12s %8.3f s\n", marker, ch.Config, ch.Total.Seconds())
	}
	fmt.Printf("\nfor %d writers of %d MiB slabs, %s wins: the pattern is\n",
		np, slabSize/mib, choices[best].Config)
	fmt.Println("bandwidth-bound and benefits from parallel I/O nodes over a single NAS.")
}
