// ROMS/HDF5 modeling: the paper's §V future work, working — an ocean model
// that writes history records through parallel HDF5 and opens several
// files during the run (rolling history files plus a restart file). The
// extracted I/O model has phases on every file, and the per-file models
// drive a what-if exploration of storage designs.
package main

import (
	"fmt"
	"os"

	"iophases"
)

func main() {
	params := iophases.DefaultROMS() // the upwelling test case
	fmt.Printf("ROMS upwelling: %dx%dx%d grid, %d steps, history every %d, restart every %d\n\n",
		params.NX, params.NY, params.NZ, params.Steps, params.HistEvery, params.RestartEvery)

	run := iophases.TraceROMS(iophases.ConfigA(), 8, params, iophases.RunOptions{})
	model := iophases.Extract(run.Set)

	// The model covers every file the application opened.
	fmt.Printf("files opened during the run:\n")
	for _, f := range model.Files {
		phases := 0
		for _, ph := range model.Phases {
			if ph.File == f.ID {
				phases++
			}
		}
		fmt.Printf("  idF=%d %-22s %d phases\n", f.ID, f.Name, phases)
	}
	fmt.Println()
	fmt.Println(model)

	// What-if: which storage design serves this pattern best?
	results, err := iophases.Explore(model, iophases.StandardVariants(iophases.ConfigA()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "roms-hdf5:", err)
		os.Exit(1)
	}
	fmt.Println("what-if exploration (phases replayed with IOR, app never re-run):")
	for rank, r := range results {
		fmt.Printf("  %2d. %-16s %8.3f s\n", rank+1, r.Variant.Name, r.Total.Seconds())
	}
}
